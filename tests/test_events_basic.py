"""Unit tests for basic events and the event protocol."""

import pytest

from repro.events.base import Event, EventError, as_wait
from repro.events.basic import (
    CpuEvent,
    DiskEvent,
    NeverEvent,
    RpcEvent,
    SharedIntEvent,
    TimerEvent,
    ValueEvent,
)
from repro.sim.kernel import Kernel
from repro.sim.resources import CpuResource, DiskResource


class TestEventBase:
    def test_trigger_is_idempotent_and_sticky(self):
        ev = Event("e")
        seen = []
        ev.subscribe(seen.append)
        ev.trigger(now=1.0)
        ev.trigger(now=2.0)
        assert ev.ready()
        assert ev.triggered_at == 1.0
        assert len(seen) == 1

    def test_subscribe_after_trigger_fires_immediately(self):
        ev = Event()
        ev.trigger()
        seen = []
        ev.subscribe(seen.append)
        assert seen == [ev]

    def test_unsubscribe_prevents_notification(self):
        ev = Event()
        seen = []
        ev.subscribe(seen.append)
        ev.unsubscribe(seen.append)
        ev.trigger()
        assert seen == []

    def test_wait_rejects_negative_timeout(self):
        with pytest.raises(EventError):
            Event().wait(timeout_ms=-1.0)

    def test_as_wait_normalizes_events(self):
        ev = Event()
        descriptor = as_wait(ev)
        assert descriptor.event is ev
        assert descriptor.timeout_ms is None

    def test_as_wait_rejects_garbage(self):
        with pytest.raises(EventError):
            as_wait(42)

    def test_basic_event_rejects_children(self):
        with pytest.raises(EventError):
            Event().child_triggered(Event())

    def test_wait_edges_for_sourced_event(self):
        ev = Event(source="s2")
        assert ev.wait_edges() == [("s2", 1, 1)]

    def test_wait_edges_empty_without_source(self):
        assert Event().wait_edges() == []


class TestTimerEvent:
    def test_fires_after_delay(self):
        kernel = Kernel()
        timer = TimerEvent(kernel, 25.0)
        kernel.run_until_idle()
        assert timer.ready()
        assert timer.triggered_at == 25.0

    def test_cancel_prevents_fire(self):
        kernel = Kernel()
        timer = TimerEvent(kernel, 25.0)
        timer.cancel()
        kernel.run_until_idle()
        assert not timer.ready()

    def test_negative_delay_rejected(self):
        with pytest.raises(EventError):
            TimerEvent(Kernel(), -5.0)


class TestValueEvent:
    def test_set_carries_value(self):
        ev = ValueEvent()
        ev.set({"ok": True}, now=3.0)
        assert ev.ready()
        assert ev.value == {"ok": True}
        assert ev.triggered_at == 3.0

    def test_double_set_rejected(self):
        ev = ValueEvent()
        ev.set(1)
        with pytest.raises(EventError):
            ev.set(2)


class TestSharedIntEvent:
    def test_triggers_at_target(self):
        ev = SharedIntEvent(target=3)
        ev.add()
        ev.add()
        assert not ev.ready()
        ev.add()
        assert ev.ready()

    def test_set_jumps_to_value(self):
        ev = SharedIntEvent(target=5)
        ev.set(7)
        assert ev.ready()

    def test_custom_predicate(self):
        ev = SharedIntEvent(predicate=lambda v: v <= -2)
        ev.add(-1)
        assert not ev.ready()
        ev.add(-1)
        assert ev.ready()

    def test_zero_target_triggers_immediately(self):
        assert SharedIntEvent(target=0).ready()

    def test_exactly_one_condition_required(self):
        with pytest.raises(EventError):
            SharedIntEvent()
        with pytest.raises(EventError):
            SharedIntEvent(target=1, predicate=lambda v: True)


class TestRpcEvent:
    def test_complete_carries_reply(self):
        ev = RpcEvent("AppendEntries", to_node="s2")
        ev.issued_at = 10.0
        ev.complete("reply", now=15.0)
        assert ev.ok
        assert ev.reply == "reply"
        assert ev.latency_ms() == pytest.approx(5.0)
        assert ev.source == "s2"

    def test_fail_carries_error(self):
        ev = RpcEvent("Vote", to_node="s3")
        ev.fail("connection reset")
        assert ev.ready()
        assert not ev.ok
        assert ev.error == "connection reset"

    def test_late_duplicate_reply_ignored(self):
        ev = RpcEvent("m", to_node="s2")
        ev.complete("first")
        ev.complete("second")
        ev.fail("late error")
        assert ev.reply == "first"
        assert ev.error is None


class TestDiskAndCpuEvents:
    def test_disk_event_completes_via_resource(self):
        kernel = Kernel()
        disk = DiskResource(kernel, bandwidth_mbps=1.0, op_latency_ms=1.0)
        ev = DiskEvent(disk, 1000, op="write", source="n0")
        kernel.run_until_idle()
        assert ev.ready()
        assert ev.triggered_at == pytest.approx(2.0)

    def test_disk_event_cancel(self):
        kernel = Kernel()
        disk = DiskResource(kernel, bandwidth_mbps=1.0)
        first = DiskEvent(disk, 1000)
        second = DiskEvent(disk, 1000)
        second.cancel()
        kernel.run_until_idle()
        assert first.ready()
        assert not second.ready()

    def test_negative_io_size_rejected(self):
        with pytest.raises(EventError):
            DiskEvent(DiskResource(Kernel()), -1)

    def test_cpu_event_waits_through_queue(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        first = CpuEvent(cpu, 5.0)
        second = CpuEvent(cpu, 5.0)
        kernel.run(until_ms=6.0)
        assert first.ready()
        assert not second.ready()
        kernel.run_until_idle()
        assert second.triggered_at == pytest.approx(10.0)

    def test_negative_cpu_cost_rejected(self):
        with pytest.raises(EventError):
            CpuEvent(CpuResource(Kernel()), -1.0)


def test_never_event_stays_pending():
    kernel = Kernel()
    ev = NeverEvent()
    kernel.run(until_ms=1000.0)
    assert not ev.ready()
