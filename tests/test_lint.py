"""Tests for depfast-lint: scanner, rules, fixtures, golden JSON, static SPG."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    build_static_spg,
    diff_spg,
    run_lint,
    render_text,
    scan_module,
)
from repro.analysis.lint import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE
from repro.analysis.lint import main as lint_main
from repro.cli import main as cli_main
from repro.trace.tracepoints import WaitRecord

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures"
SRC = REPO / "src" / "repro"


def lint_fixture(name):
    return run_lint([str(FIXTURES / "lint" / name)])


def write_module(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(source))
    return scan_module(str(path))


class TestRuleFixtures:
    """Each rule is demonstrated by a seeded fixture, flagged at the
    expected file and line."""

    @pytest.mark.parametrize(
        "fixture, rule, line",
        [
            ("df001_solo_wait.py", "DF001", 16),
            ("df002_unbounded.py", "DF002", 16),
            ("df003_blocking.py", "DF003", 11),
            ("df004_leak.py", "DF004", 11),
            ("df005_tight.py", "DF005", 11),
            ("df006_starving.py", "DF006", 10),
            ("df007_no_cancel.py", "DF007", 12),
        ],
    )
    def test_rule_fires_at_seeded_line(self, fixture, rule, line):
        result = lint_fixture(fixture)
        active = result.active(strict=True)
        assert [f.rule_id for f in active] == [rule]
        assert active[0].lineno == line
        assert active[0].path.endswith(fixture)

    def test_clean_quorum_fixture_is_clean(self):
        result = lint_fixture("clean_quorum.py")
        assert result.findings == []
        assert result.exit_code(strict=True) == EXIT_CLEAN


class TestGoldenJson:
    def test_json_output_matches_golden(self, monkeypatch, capsys):
        monkeypatch.chdir(FIXTURES)
        code = cli_main(["lint", "lint", "--format", "json", "--strict"])
        payload = json.loads(capsys.readouterr().out)
        golden = json.loads((FIXTURES / "expected_lint.json").read_text())
        assert payload == golden
        assert code == EXIT_FINDINGS
        assert payload["summary"]["errors"] == 6
        assert payload["summary"]["warnings"] == 8


class TestRepoIsLintClean:
    def test_src_repro_strict_clean(self):
        result = run_lint([str(SRC)])
        assert result.active(strict=True) == []
        assert result.exit_code(strict=True) == EXIT_CLEAN
        # The deliberate violations (chain head->tail, 2PC all-shards) are
        # suppressed with justifications, not silently absent.
        suppressed = {f.rule_id for f in result.findings if f.suppressed}
        assert "DF001" in suppressed
        assert "DF005" in suppressed


class TestSuppressions:
    def test_trailing_comment_suppresses_line(self, tmp_path):
        scan = write_module(
            tmp_path,
            """
            from repro.events.basic import Event

            class R:
                def __init__(self, node_id, group):
                    if node_id not in group:
                        raise ValueError(node_id)

                def go(self):
                    ack = Event(name="a", source="s2")
                    yield ack.wait(timeout_ms=5.0)  # depfast: allow(DF001)
            """,
        )
        from repro.analysis.rules import run_rules

        findings = run_rules([scan])
        assert [f.rule_id for f in findings] == ["DF001"]
        assert findings[0].suppressed

    def test_comment_block_suppresses_next_code_line(self, tmp_path):
        scan = write_module(
            tmp_path,
            """
            from repro.events.basic import Event

            class R:
                def __init__(self, node_id, group):
                    if node_id not in group:
                        raise ValueError(node_id)

                def go(self):
                    ack = Event(name="a", source="s2")
                    # depfast: allow(DF001) — justification line one,
                    # which continues onto a second comment line.
                    yield ack.wait(timeout_ms=5.0)
            """,
        )
        from repro.analysis.rules import run_rules

        findings = run_rules([scan])
        assert [f.rule_id for f in findings] == ["DF001"]
        assert findings[0].suppressed

    def test_allow_file_suppresses_everywhere(self, tmp_path):
        scan = write_module(
            tmp_path,
            """
            # depfast: allow-file(DF001, DF002)
            from repro.events.basic import Event

            class R:
                def __init__(self, node_id, group):
                    if node_id not in group:
                        raise ValueError(node_id)

                def go(self):
                    ack = Event(name="a", source="s2")
                    yield ack.wait()
            """,
        )
        from repro.analysis.rules import run_rules

        findings = run_rules([scan])
        assert {f.rule_id for f in findings} == {"DF001", "DF002"}
        assert all(f.suppressed for f in findings)

    def test_def_line_allow_covers_whole_function(self, tmp_path):
        scan = write_module(
            tmp_path,
            """
            from repro.events.basic import Event

            class R:
                def __init__(self, node_id, group):
                    if node_id not in group:
                        raise ValueError(node_id)

                def go(self):  # depfast: allow(DF001)
                    ack = Event(name="a", source="s2")
                    other = Event(name="b", source="s3")
                    yield ack.wait(timeout_ms=5.0)
                    yield other.wait(timeout_ms=5.0)
            """,
        )
        from repro.analysis.rules import run_rules

        findings = [f for f in run_rules([scan]) if f.rule_id == "DF001"]
        assert len(findings) == 2
        assert all(f.suppressed for f in findings)


class TestFireAndForgetHedges:
    """DF007 beyond the seeded fixture: the dropped-duplicate loop form
    and the shapes that must stay clean."""

    def _findings(self, tmp_path, source):
        from repro.analysis.rules import run_rules

        return run_rules([write_module(tmp_path, source)])

    def test_loop_of_dropped_sends_is_flagged(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            class Sprayer:
                def spray(self, peers):
                    for peer in peers:
                        self.ep.call(peer, "read", {}, size_bytes=16)
                    yield self.rt.sleep(1.0)
            """,
        )
        assert [f.rule_id for f in findings] == ["DF007"]
        assert "fire-and-forget" in findings[0].message

    def test_kept_handles_in_loop_are_clean(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            class Batcher:
                def fan_out(self, peers):
                    calls = []
                    for peer in peers:
                        calls.append(self.ep.call(peer, "read", {}))
                    yield self.rt.sleep(1.0)
                    for call in calls:
                        call.cancel_send()
            """,
        )
        assert [f for f in findings if f.rule_id == "DF007"] == []

    def test_default_cancel_losers_is_clean(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            from repro.hedging import HedgedCall, HedgePolicy

            class Hedger:
                def race(self, peers):
                    policy = HedgePolicy(max_hedges=2)
                    call = HedgedCall(self.ep, peers, "read", policy=policy)
                    yield call.wait(timeout_ms=50.0)
            """,
        )
        assert [f for f in findings if f.rule_id == "DF007"] == []

    def test_no_cancel_policy_is_flagged(self, tmp_path):
        findings = self._findings(
            tmp_path,
            """
            from repro.hedging import HedgePolicy

            class Config:
                def build(self):
                    return HedgePolicy(max_hedges=2, cancel_losers=False)
            """,
        )
        assert [f.rule_id for f in findings] == ["DF007"]
        assert "HedgePolicy" in findings[0].message


class TestScannerResolution:
    def test_dedicated_spawn_exempts_repair_style_loop(self, tmp_path):
        scan = write_module(
            tmp_path,
            """
            from repro.events.basic import Event

            class R:
                def __init__(self, node_id, group):
                    if node_id not in group:
                        raise ValueError(node_id)

                def start(self, peer):
                    self.rt.spawn(self._repair(peer), dedication=peer)

                def _repair(self, peer):
                    rpc = self.ep.call(peer, "fix", {}, size_bytes=1)
                    yield rpc.wait(timeout_ms=10.0)
            """,
        )
        from repro.analysis.rules import run_rules

        assert [f for f in run_rules([scan]) if f.rule_id == "DF001"] == []
        func = scan.by_name["_repair"]
        assert func.dedicated
        assert func.wait_sites[0].shape.remote

    def test_helper_return_shape_propagates(self, tmp_path):
        scan = write_module(
            tmp_path,
            """
            class R:
                def __init__(self, node_id, group):
                    if node_id not in group:
                        raise ValueError(node_id)

                def go(self, peer):
                    rpc = self._send(peer)
                    yield rpc.wait(timeout_ms=10.0)

                def _send(self, peer):
                    return self.ep.call(peer, "m", {}, size_bytes=1)
            """,
        )
        site = scan.by_name["go"].wait_sites[0]
        assert site.shape.kind == "rpc"
        assert site.shape.remote

    def test_unresolved_yields_never_flagged(self, tmp_path):
        scan = write_module(
            tmp_path,
            """
            class R:
                def __init__(self, node_id, group):
                    if node_id not in group:
                        raise ValueError(node_id)

                def go(self):
                    yield self.mystery()
            """,
        )
        from repro.analysis.rules import run_rules

        assert run_rules([scan]) == []
        assert scan.by_name["go"].wait_sites == []


class TestCliLint:
    def test_usage_error_exit_code(self, capsys):
        assert lint_main(["no/such/path.py"]) == EXIT_USAGE
        assert "error" in capsys.readouterr().out

    def test_text_format_summary_line(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "lint" / "clean_quorum.py")])
        out = capsys.readouterr().out
        assert code == EXIT_CLEAN
        assert "depfast-lint: 1 files, 0 errors, 0 warnings" in out

    def test_default_vs_strict_exit(self):
        # df005 is warning severity: clean by default, findings under strict.
        path = str(FIXTURES / "lint" / "df005_tight.py")
        result = run_lint([path])
        assert result.exit_code(strict=False) == EXIT_CLEAN
        assert result.exit_code(strict=True) == EXIT_FINDINGS

    def test_help_lists_lint_and_chaos(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["--help"])
        out = capsys.readouterr().out
        assert "lint" in out and "static fail-slow tolerance analysis" in out
        assert "chaos" in out and "chaos campaign" in out


def _record(node, kind, edges, dedication=None):
    return WaitRecord(
        coro_name="c",
        node=node,
        event_kind=kind,
        event_name="e",
        edges=edges,
        started_at=0.0,
        ended_at=1.0,
        timed_out=False,
        dedication=dedication,
    )


class TestStaticSpgAndDiff:
    GROUPS = [["s1", "s2", "s3"]]

    def _static(self):
        scans = [
            scan_module(str(SRC / "raft" / "node.py")),
            scan_module(str(SRC / "workload" / "driver.py")),
        ]
        return build_static_spg(scans)

    def test_raft_static_spg_has_group_green_edges(self):
        static = self._static()
        assert static.matching("green", "group")
        # The repair loop's per-peer rpc wait is a dedicated red edge.
        dedicated_reds = [
            e for e in static.matching("red", "group") if e.dedicated
        ]
        assert dedicated_reds

    def test_quorum_wait_is_predicted(self):
        static = self._static()
        records = [_record("s1", "quorum", [("s2", 2, 3), ("s3", 2, 3)])]
        diff = diff_spg(static, records, self.GROUPS)
        assert diff.coverage == 1.0
        assert not diff.runtime_only

    def test_client_boundary_wait_is_predicted(self):
        static = self._static()
        records = [_record("c1", "rpc", [("s1", 1, 1)])]
        diff = diff_spg(static, records, self.GROUPS)
        assert diff.coverage == 1.0

    def test_unpredicted_edge_is_runtime_only(self):
        # A non-dedicated red group edge: raft has no such (non-suppressed)
        # wait site, so the diff must report it as a miss.
        static = self._static()
        records = [_record("s1", "rpc", [("s2", 1, 1)])]
        diff = diff_spg(static, records, self.GROUPS)
        assert diff.coverage == 0.0
        assert len(diff.runtime_only) == 1
        assert "MISS" in diff.render()

    def test_dedicated_runtime_wait_matches_dedicated_site(self):
        static = self._static()
        records = [_record("s1", "rpc", [("s2", 1, 1)], dedication="s2")]
        diff = diff_spg(static, records, self.GROUPS)
        assert diff.coverage == 1.0

    def test_render_text_mentions_counts(self):
        result = run_lint([str(FIXTURES / "lint" / "df001_solo_wait.py")])
        text = render_text(result)
        assert "DF001" in text
        assert "1 errors" in text
