"""DepFastRaft integration tests on the simulated cluster."""

import pytest

from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader
from repro.raft.types import Role
from repro.trace.verify import check_fail_slow_tolerance
from repro.workload.driver import ClosedLoopDriver, KvServiceClient
from repro.workload.ycsb import YcsbWorkload


def deploy(n=3, seed=7, **config_kwargs):
    cluster = Cluster(seed=seed)
    group = [f"s{i+1}" for i in range(n)]
    config = RaftConfig(preferred_leader="s1", **config_kwargs)
    raft = deploy_depfast_raft(cluster, group, config=config)
    return cluster, raft, group


def run_client_ops(cluster, group, ops, client_node=None):
    """Synchronously execute a list of KV ops; returns results."""
    node = client_node or cluster.add_client(f"cx{cluster.kernel.now:.0f}")
    if client_node is None:
        node.start()
    client = KvServiceClient(node, group)
    results = []

    def script():
        for op in ops:
            ok, value = yield from client.execute(op, size_bytes=64)
            results.append((ok, value))

    node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 20_000.0)
    return results


class TestElection:
    def test_preferred_leader_wins_first_election(self):
        cluster, raft, group = deploy()
        leader = wait_for_leader(cluster, raft)
        assert leader.id == "s1"
        assert leader.role == Role.LEADER

    def test_exactly_one_leader(self):
        cluster, raft, group = deploy(n=5)
        wait_for_leader(cluster, raft)
        cluster.run(until_ms=5000.0)
        leaders = [r for r in raft.values() if r.role == Role.LEADER]
        assert len(leaders) == 1

    def test_leader_crash_triggers_reelection(self):
        cluster, raft, group = deploy()
        leader = wait_for_leader(cluster, raft)
        leader.node.crash()
        cluster.run(until_ms=cluster.kernel.now + 10_000.0)
        new_leader = find_leader(raft)
        assert new_leader is not None
        assert new_leader.id != leader.id
        assert new_leader.term > leader.term

    def test_single_node_group_becomes_leader(self):
        cluster = Cluster(seed=1)
        raft = deploy_depfast_raft(
            cluster, ["solo"], config=RaftConfig(preferred_leader="solo")
        )
        leader = wait_for_leader(cluster, raft)
        assert leader.id == "solo"

    def test_even_group_size_rejected(self):
        cluster = Cluster()
        with pytest.raises(ValueError):
            deploy_depfast_raft(cluster, ["a", "b"])


class TestReplication:
    def test_put_commits_and_reads_back(self):
        cluster, raft, group = deploy()
        wait_for_leader(cluster, raft)
        results = run_client_ops(
            cluster, group, [("put", "k1", "v1"), ("get", "k1")]
        )
        assert results == [(True, None), (True, "v1")]

    def test_logs_and_state_converge_across_replicas(self):
        cluster, raft, group = deploy()
        wait_for_leader(cluster, raft)
        ops = [("put", f"key{i}", f"val{i}") for i in range(50)]
        results = run_client_ops(cluster, group, ops)
        assert all(ok for ok, _ in results)
        cluster.run(until_ms=cluster.kernel.now + 2000.0)  # quiesce
        checksums = {r.kv.checksum() for r in raft.values()}
        assert len(checksums) == 1
        applied = {r.last_applied for r in raft.values()}
        assert applied == {50}

    def test_follower_redirects_clients_to_leader(self):
        cluster, raft, group = deploy()
        wait_for_leader(cluster, raft)
        node = cluster.add_client("c1")
        node.start()
        # Point the client at a follower first.
        client = KvServiceClient(node, ["s3", "s1", "s2"])
        results = []

        def script():
            ok, _ = yield from client.execute(("put", "a", "b"), size_bytes=64)
            results.append(ok)

        node.runtime.spawn(script())
        cluster.run(until_ms=cluster.kernel.now + 5000.0)
        assert results == [True]
        assert client.redirects >= 1

    def test_commits_survive_leader_failover(self):
        cluster, raft, group = deploy()
        leader = wait_for_leader(cluster, raft)
        results = run_client_ops(cluster, group, [("put", "stable", "1")])
        assert results[0][0] is True
        leader.node.crash()
        cluster.run(until_ms=cluster.kernel.now + 10_000.0)
        results = run_client_ops(cluster, group, [("get", "stable")])
        assert results == [(True, "1")]


class TestFailSlowTolerance:
    def _measure(self, cluster, driver, start, end):
        cluster.run(until_ms=end)
        return driver.report(start, end)

    def test_slow_follower_does_not_stall_commits(self):
        cluster, raft, group = deploy()
        wait_for_leader(cluster, raft)
        injector = FaultInjector(cluster)
        injector.inject("s3", "cpu_slow")
        results = run_client_ops(
            cluster, group, [("put", f"k{i}", "v") for i in range(20)]
        )
        assert all(ok for ok, _ in results)

    @pytest.mark.slow
    def test_throughput_within_band_under_network_slow_follower(self):
        cluster, raft, group = deploy(seed=11)
        wait_for_leader(cluster, raft)
        workload = YcsbWorkload(cluster.rng.stream("ycsb"), record_count=1000)
        driver = ClosedLoopDriver(cluster, group, workload, n_clients=16)
        driver.start()
        # Healthy window.
        cluster.run(until_ms=3000.0)
        driver.recorder  # warmup implicitly excluded by windows below
        healthy = self._measure(cluster, driver, 3000.0, 6000.0)
        # Fault window.
        injector = FaultInjector(cluster)
        injector.inject("s2", "network_slow")
        cluster.run(until_ms=7000.0)  # let the fault settle
        faulty = self._measure(cluster, driver, 7000.0, 10_000.0)
        assert healthy.throughput_ops_s > 0
        drift = abs(faulty.throughput_ops_s - healthy.throughput_ops_s)
        assert drift / healthy.throughput_ops_s < 0.10
        assert not faulty.crashed

    def test_repair_catches_up_slow_follower(self):
        cluster, raft, group = deploy(seed=13)
        wait_for_leader(cluster, raft)
        injector = FaultInjector(cluster)
        injector.inject("s3", "cpu_slow")
        ops = [("put", f"k{i}", "v" * 50) for i in range(200)]
        results = run_client_ops(cluster, group, ops)
        assert all(ok for ok, _ in results)
        injector.clear("s3")
        # After the fault clears, repair must bring s3 fully up to date.
        cluster.run(until_ms=cluster.kernel.now + 30_000.0)
        assert raft["s3"].log.last_index() == raft["s1"].log.last_index()
        assert raft["s3"].kv.checksum() == raft["s1"].kv.checksum()

    def test_trace_has_no_intra_group_single_waits(self):
        cluster, raft, group = deploy()
        wait_for_leader(cluster, raft)
        run_client_ops(cluster, group, [("put", f"k{i}", "v") for i in range(10)])
        report = check_fail_slow_tolerance(cluster.tracer.records, [group])
        assert report.tolerant, report.summary()

    @pytest.mark.slow
    def test_bounded_buffers_keep_leader_memory_flat(self):
        cluster, raft, group = deploy(seed=17)
        leader = wait_for_leader(cluster, raft)
        injector = FaultInjector(cluster)
        injector.inject("s3", "cpu_slow")
        workload = YcsbWorkload(cluster.rng.stream("ycsb"), record_count=1000)
        driver = ClosedLoopDriver(cluster, group, workload, n_clients=16)
        driver.start()
        cluster.run(until_ms=10_000.0)
        buffered = cluster.network.buffered_bytes_from("s1")
        assert buffered <= 4 * 1024 * 1024  # bounded by the DepFast limit
        assert not leader.node.crashed


class TestWorkloadDriver:
    @pytest.mark.slow
    def test_driver_reports_throughput_and_latency(self):
        cluster, raft, group = deploy()
        wait_for_leader(cluster, raft)
        workload = YcsbWorkload(cluster.rng.stream("ycsb"), record_count=100)
        driver = ClosedLoopDriver(cluster, group, workload, n_clients=8)
        driver.start()
        cluster.run(until_ms=5000.0)
        report = driver.report(1000.0, 5000.0)
        assert report.throughput_ops_s > 100.0
        assert report.avg_latency_ms > 0.0
        assert report.p99_latency_ms >= report.avg_latency_ms
        assert report.errors == 0
