"""Tests for the software fail-slow fault extension (debug logging)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.faults.catalog import SOFTWARE_FAULTS
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, wait_for_leader
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


class TestCatalog:
    def test_debug_logging_in_catalog(self):
        spec = SOFTWARE_FAULTS["debug_logging"]
        assert spec.param("parse_cost_multiplier") > 1.0
        assert "misconfiguration" in spec.description


class TestInjection:
    def test_inject_and_clear_restores_costs(self):
        cluster = Cluster()
        node = cluster.add_node("s1")
        base_flat = node.endpoint.parse_cost_ms
        base_kb = node.endpoint.parse_cost_per_kb_ms
        injector = FaultInjector(cluster)
        injector.inject("s1", "debug_logging")
        assert node.endpoint.parse_cost_ms > base_flat
        assert node.endpoint.parse_cost_per_kb_ms > base_kb
        injector.clear("s1")
        assert node.endpoint.parse_cost_ms == pytest.approx(base_flat)
        assert node.endpoint.parse_cost_per_kb_ms == pytest.approx(base_kb)


class TestEndToEnd:
    def _run(self, fault):
        cluster = Cluster(seed=53)
        raft = deploy_depfast_raft(cluster, GROUP, config=RaftConfig(preferred_leader="s1"))
        wait_for_leader(cluster, raft)
        if fault:
            FaultInjector(cluster).inject("s3", fault)
        workload = YcsbWorkload(cluster.rng.stream("y"), record_count=1000, value_size=1000)
        driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=16)
        driver.start()
        cluster.run(until_ms=6000.0)
        return driver.report(2000.0, 6000.0), raft

    @pytest.mark.slow
    def test_depfast_tolerates_misconfigured_follower(self):
        healthy, _ = self._run(None)
        slowed, raft = self._run("debug_logging")
        # The misconfigured follower falls behind, but the group's quorum
        # keeps client performance inside the band.
        drift = abs(slowed.throughput_ops_s - healthy.throughput_ops_s)
        assert drift / healthy.throughput_ops_s < 0.10
        assert slowed.errors == 0
