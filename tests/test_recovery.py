"""Crash–recovery: durable state, WAL replay, session dedup, injector fixes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.faults.catalog import TABLE1
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import (
    deploy_depfast_raft,
    find_leader,
    restart_raft_node,
    wait_for_leader,
)
from repro.storage.durable import DurableRaftState
from repro.storage.kvstore import KvStore
from repro.workload.driver import KvServiceClient


class _Entry:
    def __init__(self, index, term, op=("noop",)):
        self.index = index
        self.term = term
        self.op = op


class TestDurableRaftState:
    def test_staged_entries_become_durable_only_after_sync(self):
        durable = DurableRaftState("s1")
        durable.stage_entries([_Entry(1, 1), _Entry(2, 1)])
        assert durable.durable_count() == 0
        covered = durable.begin_sync()
        durable.stage_entries([_Entry(3, 1)])  # staged after the fsync cut
        durable.commit_sync(covered)
        assert durable.durable_count() == 2
        assert [e.index for e in durable.recovered_entries()] == [1, 2]

    def test_unsynced_suffix_is_lost_on_recovery(self):
        durable = DurableRaftState("s1")
        durable.stage_entries([_Entry(1, 1), _Entry(2, 1), _Entry(3, 1)])
        durable.commit_sync([1])  # only entry 1 made it to disk
        recovered = durable.recovered_entries()
        assert [e.index for e in recovered] == [1]
        assert durable.lost_on_recovery == 2

    def test_conflicting_term_invalidates_suffix(self):
        durable = DurableRaftState("s1")
        durable.stage_entries([_Entry(1, 1), _Entry(2, 1), _Entry(3, 1)])
        durable.commit_sync(durable.begin_sync())
        # A new leader overwrites index 2 with a higher-term entry.
        durable.stage_entries([_Entry(2, 2)])
        durable.commit_sync(durable.begin_sync())
        assert [(e.index, e.term) for e in durable.recovered_entries()] == [
            (1, 1),
            (2, 2),
        ]

    def test_restaged_entry_not_marked_durable_by_stale_sync(self):
        """A sync that began before a conflicting restage must not mark
        the restaged entry durable when it lands (overlapping
        begin_sync/commit_sync guard)."""
        durable = DurableRaftState("s1")
        durable.stage_entries([_Entry(1, 1), _Entry(2, 1)])
        covered = durable.begin_sync()
        # A new leader overwrites index 2 while that fsync is in flight.
        durable.stage_entries([_Entry(2, 2)])
        durable.commit_sync(covered)  # index 2's seq is stale: skip it
        assert durable.durable_count() == 1
        # The next sync cut covers the restaged entry for real.
        durable.commit_sync(durable.begin_sync())
        assert [(e.index, e.term) for e in durable.recovered_entries()] == [
            (1, 1),
            (2, 2),
        ]

    def test_snapshot_drops_covered_entries(self):
        durable = DurableRaftState("s1")
        durable.stage_entries([_Entry(i, 1) for i in range(1, 6)])
        durable.commit_sync(durable.begin_sync())
        durable.save_snapshot(3, 1, {"data": {}, "applied": 3})
        assert [e.index for e in durable.recovered_entries()] == [4, 5]
        durable.save_snapshot(2, 1, {"data": {}, "applied": 2})  # stale: ignored
        assert durable.snapshot_index == 3


class TestSessionDedup:
    def test_duplicate_retry_returns_cached_result_without_reapplying(self):
        kv = KvStore()
        first = kv.apply(("csess", "c1", 1, ("put", "k", "v1")))
        again = kv.apply(("csess", "c1", 1, ("put", "k", "v1")))
        assert first == again
        assert kv.duplicates_deduped == 1
        assert kv.exactly_once_violations() == 0
        assert kv.get("k") == "v1"

    def test_sessions_survive_snapshot_roundtrip(self):
        kv = KvStore()
        kv.apply(("csess", "c1", 1, ("put", "k", "v1")))
        clone = KvStore()
        clone.restore_state(kv.snapshot_state())
        clone.apply(("csess", "c1", 1, ("put", "k", "v1")))
        assert clone.duplicates_deduped == 1
        assert clone.exactly_once_violations() == 0

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),  # request id
                st.sampled_from(["a", "b"]),  # key
                st.integers(min_value=1, max_value=3),  # duplicate count
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_duplicated_retries_apply_exactly_once(self, ops):
        """However a committed log duplicates a session's requests, each
        request id mutates the state machine at most once."""
        kv = KvStore()
        reference = {}
        highest = 0
        for rid, key, copies in sorted(ops):
            if rid <= highest:
                continue  # session rids are issued in order
            highest = rid
            value = f"v{rid}"
            for _ in range(copies):
                kv.apply(("csess", "sess", rid, ("put", key, value)))
            reference[key] = value
        assert kv.exactly_once_violations() == 0
        for key, value in reference.items():
            assert kv.get(key) == value


class TestInjectorFixes:
    def test_scheduled_overlap_queues_instead_of_raising(self):
        cluster = Cluster(seed=1)
        cluster.add_node("s1")
        injector = FaultInjector(cluster)
        injector.inject_transient("s1", "cpu_slow", at_ms=100.0, duration_ms=500.0)
        injector.inject_transient("s1", "disk_slow", at_ms=300.0, duration_ms=400.0)
        cluster.run(350.0)  # second fault fired while the first is active
        assert injector.fault_on("s1").fault_type.value == "cpu_slow"
        assert injector.queued_count("s1") == 1
        cluster.run(700.0)  # first cleared at 600 -> queued fault applied
        assert injector.fault_on("s1").fault_type.value == "disk_slow"
        cluster.run(1200.0)  # queued fault keeps its full duration (600..1000)
        assert injector.fault_on("s1") is None
        actions = [action for _, _, _, action in injector.history]
        assert "queued" in actions

    def test_clear_restores_saved_memory_limit_not_default(self):
        cluster = Cluster(seed=1)
        node = cluster.add_node("s1")
        tightened = int(node.spec.memory_bytes * 0.8)
        node.memory.set_limit(tightened)  # operator-configured, non-default
        injector = FaultInjector(cluster)
        injector.inject("s1", TABLE1["memory_contention"])
        assert node.memory.limit_bytes < tightened
        injector.clear("s1")
        assert node.memory.limit_bytes == tightened

    def test_clear_restores_cpu_quota_under_background_jitter_value(self):
        cluster = Cluster(seed=1)
        node = cluster.add_node("s1")
        node.cpu.set_quota(0.9)  # ambient, non-default value
        injector = FaultInjector(cluster)
        injector.inject("s1", TABLE1["cpu_slow"])
        injector.clear("s1")
        assert node.cpu.quota == pytest.approx(0.9)


def _deploy(n=3, seed=7, **kwargs):
    cluster = Cluster(seed=seed)
    group = [f"s{i + 1}" for i in range(n)]
    config = RaftConfig(preferred_leader="s1", **kwargs)
    raft = deploy_depfast_raft(cluster, group, config=config)
    return cluster, raft, group


class TestCrashRecovery:
    def test_crash_during_inflight_commits_acked_writes_survive(self):
        """Kill the leader mid-stream; every acknowledged write must still
        be in every replica's state machine after reboot + convergence."""
        cluster, raft, group = _deploy(seed=11)
        wait_for_leader(cluster, raft)
        client_node = cluster.add_client("c1")
        client_node.start()
        client = KvServiceClient(client_node, group, session_id="c1#0")
        acked = {}

        def script():
            for i in range(40):
                op = ("put", f"k{i}", f"v{i}")
                ok, _ = yield from client.execute(op, size_bytes=64)
                if ok:
                    acked[f"k{i}"] = f"v{i}"

        client_node.runtime.spawn(script())
        # Crash the leader while writes are in flight, reboot 2s later.
        cluster.kernel.schedule_at(
            2_500.0, lambda: cluster.node("s1").crash("test-kill")
        )
        cluster.run(4_500.0)
        assert cluster.node("s1").crashed
        recovered = restart_raft_node(cluster, raft, "s1")
        assert recovered.recovered
        assert recovered.durable.recoveries == 1
        cluster.run(40_000.0)

        assert acked, "client made no progress"
        assert find_leader(raft) is not None
        for raft_node in raft.values():
            assert not raft_node.node.crashed
            for key, value in acked.items():
                assert raft_node.kv.get(key) == value, (
                    f"{raft_node.id} lost acked write {key}"
                )
            assert raft_node.kv.exactly_once_violations() == 0

    def test_restarted_follower_catches_up_via_replay_and_repair(self):
        cluster, raft, group = _deploy(seed=5)
        wait_for_leader(cluster, raft)
        from tests.test_raft import run_client_ops

        run_client_ops(cluster, group, [("put", f"a{i}", i) for i in range(10)])
        cluster.node("s3").crash("test")
        run_client_ops(cluster, group, [("put", f"b{i}", i) for i in range(10)])
        restarted = restart_raft_node(cluster, raft, "s3")
        assert restarted.recovered
        # The replayed log already holds the pre-crash entries...
        assert restarted.log.last_index() >= 10
        cluster.run(cluster.kernel.now + 15_000.0)
        # ...and repair delivers the rest; states converge exactly.
        digests = {r.kv.stable_digest() for r in raft.values()}
        assert len(digests) == 1

    def test_partition_heal_convergence(self):
        """Majority keeps committing while the old leader is partitioned
        away; after the heal the minority rejoins the same history."""
        cluster, raft, group = _deploy(seed=9)
        wait_for_leader(cluster, raft)
        from tests.test_raft import run_client_ops

        run_client_ops(cluster, group, [("put", "x", 1)])
        cluster.network.isolate("s1")
        results = run_client_ops(cluster, group, [("put", "y", 2), ("put", "z", 3)])
        assert all(ok for ok, _ in results)
        new_leader = find_leader(raft)
        assert new_leader is not None and new_leader.id != "s1"
        cluster.network.heal()
        cluster.run(cluster.kernel.now + 15_000.0)
        leaders = [r for r in raft.values() if r.role.value == "leader"]
        assert len(leaders) == 1
        digests = {r.kv.stable_digest() for r in raft.values()}
        assert len(digests) == 1
        assert raft["s1"].kv.get("z") == 3


class TestCrashWhileBreakerTripped:
    @pytest.mark.slow
    def test_queued_entries_lost_but_group_converges(self):
        """Reboot under a tripped breaker: the write-behind queue dies with
        the process, recovery reflects only what was actually fsynced, and
        the majority (which kept real-fsyncing) re-replicates the rest."""
        from repro.bench.breaker import BACKEND_CONTENTION
        from repro.breaker import (
            AttributionConfig,
            BreakerState,
            install_breaker_wals,
        )
        from repro.detector.mitigation import MitigationConfig, MitigationController
        from repro.workload.driver import ClosedLoopDriver
        from repro.workload.ycsb import YcsbWorkload

        cluster, raft, group = _deploy(seed=13)
        install_breaker_wals(cluster, group)
        controller = MitigationController(
            cluster,
            raft,
            detectors=[],
            config=MitigationConfig(
                window_ms=250.0,
                attribution=AttributionConfig(suspect_windows=1, min_samples=3),
            ),
        )
        controller.start()
        wait_for_leader(cluster, raft)
        workload = YcsbWorkload(
            cluster.rng.stream("ycsb"), record_count=1_000, value_size=200
        )
        driver = ClosedLoopDriver(cluster, group, workload, n_clients=8)
        driver.start()

        FaultInjector(cluster).inject_transient("s3", BACKEND_CONTENTION, 500.0, 2_500.0)
        cluster.run(2_500.0)
        wal = cluster.node("s3").wal
        assert wal.state == BreakerState.OPEN
        assert wal.queued_bytes > 0  # acked-from-memory bytes at risk

        cluster.node("s3").crash("crash while breaker tripped")
        assert wal.dropped_entries_on_retire > 0  # the queue died unfsynced
        cluster.run(4_000.0)
        restarted = restart_raft_node(cluster, raft, "s3")
        assert restarted.recovered
        assert restarted.durable.lost_on_recovery > 0  # honest recovery
        # Keep client traffic flowing: the crashed node was demoted to
        # learner, and learners catch up by riding live replication.
        cluster.run(12_000.0)
        driver.stop()
        cluster.run(25_000.0)

        # The majority kept real fsyncs, so nothing acked to clients was
        # lost: the group converges to one identical history.
        digests = {r.kv.stable_digest() for r in raft.values()}
        assert len(digests) == 1
        assert {r.last_applied for r in raft.values()} != {0}
        for raft_node in raft.values():
            assert raft_node.kv.exactly_once_violations() == 0
