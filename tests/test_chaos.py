"""Nemesis orchestration + end-to-end chaos runs with safety verdicts."""

import pytest

from repro.bench.chaos import ChaosParams, run_chaos_campaign, run_chaos_once
from repro.cluster.cluster import Cluster
from repro.faults.chaos import Nemesis
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader

QUICK = ChaosParams(
    warmup_ms=1_000.0,
    chaos_window_ms=3_000.0,
    converge_deadline_ms=8_000.0,
    events=6,
    n_clients=4,
)


def _deploy(n=3, seed=7):
    cluster = Cluster(seed=seed)
    group = [f"s{i + 1}" for i in range(n)]
    raft = deploy_depfast_raft(
        cluster,
        group,
        config=RaftConfig(
            preferred_leader="s1",
            heartbeat_interval_ms=50.0,
            election_timeout_min_ms=300.0,
            election_timeout_max_ms=600.0,
        ),
    )
    wait_for_leader(cluster, raft)
    return cluster, raft, group


class TestNemesisGuardrail:
    def test_crashes_never_break_majority(self):
        cluster, raft, group = _deploy()
        nemesis = Nemesis(cluster, raft, majority_guard=True)
        # Try to take down everything at once; the guard must keep 2 of 3.
        for i, node_id in enumerate(group):
            nemesis.schedule_crash_restart(node_id, 1_000.0 + i, 5_000.0)
        cluster.run(2_000.0)
        assert len(cluster.crashed_nodes()) <= 1
        assert nemesis.skipped == 2
        cluster.run(10_000.0)
        assert cluster.crashed_nodes() == []
        assert nemesis.restarts == nemesis.crashes == 1

    def test_partition_guard_counts_crashed_nodes(self):
        cluster, raft, group = _deploy()
        nemesis = Nemesis(cluster, raft, majority_guard=True)
        nemesis.schedule_crash_restart("s2", 1_000.0, 4_000.0)
        # Isolating s3 while s2 is down would leave no majority: skipped.
        nemesis.schedule_isolation("s3", 2_000.0, 1_000.0)
        cluster.run(3_000.0)
        assert nemesis.partitions == 0
        assert nemesis.skipped == 1

    def test_guard_disabled_allows_total_failure(self):
        cluster, raft, group = _deploy()
        nemesis = Nemesis(cluster, raft, majority_guard=False)
        for i, node_id in enumerate(group):
            nemesis.schedule_crash_restart(node_id, 1_000.0 + i, 2_000.0)
        cluster.run(2_000.0)
        assert len(cluster.crashed_nodes()) == 3


class TestNemesisComposition:
    def test_overlapping_partitions_heal_their_own_edges(self):
        cluster, raft, group = _deploy(n=5)
        nemesis = Nemesis(cluster, raft, majority_guard=True)
        nemesis.schedule_isolation("s4", 1_000.0, 3_000.0)
        nemesis.schedule_isolation("s5", 2_000.0, 500.0)
        cluster.run(3_000.0)  # s5's heal fired; s4 still cut
        assert not cluster.network.is_blocked("s5", "s1")
        assert cluster.network.is_blocked("s4", "s1")
        cluster.run(4_500.0)
        assert cluster.network.partitioned_pairs() == set()
        assert nemesis.heals == 2

    def test_leader_sentinel_resolves_at_fire_time(self):
        cluster, raft, group = _deploy()
        nemesis = Nemesis(cluster, raft, majority_guard=True)
        leader_before = find_leader(raft).id
        nemesis.schedule_crash_restart("__leader__", 1_000.0, 2_000.0)
        cluster.run(1_500.0)
        assert cluster.node(leader_before).crashed
        cluster.run(12_000.0)
        assert cluster.crashed_nodes() == []
        assert find_leader(raft) is not None

    def test_random_schedule_is_deterministic(self):
        plans = []
        for _ in range(2):
            cluster, raft, group = _deploy(seed=3)
            nemesis = Nemesis(cluster, raft)
            plans.append(
                nemesis.random_schedule(
                    cluster.rng.stream("nemesis"), 1_000.0, 5_000.0, events=8
                )
            )
        assert plans[0] == plans[1]


class TestChaosRuns:
    def test_quick_chaos_run_is_safe(self):
        run = run_chaos_once(0, QUICK)
        assert run.linearizable
        assert run.converged
        assert run.double_applies == 0
        assert run.completed_ops > 100

    @pytest.mark.slow
    def test_same_seed_reruns_bit_identical(self):
        a = run_chaos_once(1, QUICK)
        b = run_chaos_once(1, QUICK)
        assert a.digest == b.digest
        assert a.nemesis_log == b.nemesis_log
        assert a.completed_ops == b.completed_ops

    @pytest.mark.slow
    def test_different_seeds_chart_different_chaos(self):
        a = run_chaos_once(2, QUICK)
        b = run_chaos_once(3, QUICK)
        assert a.nemesis_log != b.nemesis_log

    @pytest.mark.slow
    def test_multiseed_campaign_on_both_group_sizes(self):
        campaign = run_chaos_campaign(range(4), group_sizes=(3, 5), params=QUICK)
        assert campaign.ok, "\n".join(
            f"seed={run.seed} n={run.group_size} lin={run.linearizable} "
            f"conv={run.converged} dup={run.double_applies}"
            for run in campaign.failures
        )
        assert sum(run.crashes for run in campaign.runs) > 0
        assert sum(run.partitions for run in campaign.runs) > 0
        assert sum(run.duplicates_deduped for run in campaign.runs) > 0


class TestChaosCli:
    @pytest.mark.slow
    def test_cli_chaos_single_seed(self, capsys):
        from repro.cli import main

        code = main(["chaos", "--seed", "0", "--group-sizes", "3", "--events", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "linearizable" in out
        assert "exactly-once" in out
