"""Property-based tests for the Raft log and end-to-end safety invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.faults.catalog import fault_names
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.log import RaftLog
from repro.raft.service import deploy_depfast_raft, wait_for_leader
from repro.raft.types import LogEntry
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload


# ---------------------------------------------------------------------------
# RaftLog unit-level invariants
# ---------------------------------------------------------------------------
def entry(term, index):
    return LogEntry.sized(term, index, ("put", f"k{index}", "v"))


@given(
    prefix_len=st.integers(min_value=0, max_value=30),
    batches=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=30),  # start index
            st.integers(min_value=1, max_value=5),   # batch length
            st.integers(min_value=1, max_value=3),   # term
        ),
        max_size=10,
    ),
)
@settings(max_examples=100)
def test_append_or_overwrite_keeps_log_contiguous(prefix_len, batches):
    log = RaftLog()
    for i in range(1, prefix_len + 1):
        log.append(entry(1, i))
    for start, length, term in batches:
        start = min(start, log.last_index() + 1)  # no gaps allowed
        log.append_or_overwrite([entry(term, start + k) for k in range(length)])
        # Invariant: indices are contiguous 1..last.
        for index in range(1, log.last_index() + 1):
            assert log.entry_at(index).index == index
        assert log.term_at(0) == 0


@given(
    entries_terms=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=30)
)
def test_append_or_overwrite_is_idempotent(entries_terms):
    log_a, log_b = RaftLog(), RaftLog()
    batch = [entry(term, i + 1) for i, term in enumerate(sorted(entries_terms))]
    log_a.append_or_overwrite(batch)
    changed_second = log_a.append_or_overwrite(batch)  # replay
    log_b.append_or_overwrite(batch)
    assert changed_second == 0
    assert log_a.last_index() == log_b.last_index()
    for index in range(1, log_a.last_index() + 1):
        assert log_a.entry_at(index) == log_b.entry_at(index)


@given(
    n=st.integers(min_value=1, max_value=50),
    truncate_at=st.integers(min_value=1, max_value=60),
)
def test_truncate_then_reappend(n, truncate_at):
    log = RaftLog()
    for i in range(1, n + 1):
        log.append(entry(1, i))
    dropped = log.truncate_from(truncate_at)
    assert dropped == max(0, n - truncate_at + 1)
    assert log.last_index() == min(n, truncate_at - 1)
    log.append(entry(2, log.last_index() + 1))  # re-append works


@given(
    cache_size=st.integers(min_value=1, max_value=20),
    n_entries=st.integers(min_value=1, max_value=60),
)
def test_slice_cached_counts_misses_below_cache_floor(cache_size, n_entries):
    log = RaftLog(cache_entries=cache_size)
    for i in range(1, n_entries + 1):
        log.append(entry(1, i))
    entries, disk_bytes, misses = log.slice_cached(1, n_entries)
    assert len(entries) == n_entries
    expected_misses = max(0, n_entries - cache_size)
    assert misses == expected_misses
    assert (disk_bytes > 0) == (expected_misses > 0)


# ---------------------------------------------------------------------------
# End-to-end safety under randomized fail-slow schedules
# ---------------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=1000),
    fault=st.sampled_from(fault_names()),
    victim=st.sampled_from(["s2", "s3"]),
)
@settings(max_examples=6, deadline=None)
@pytest.mark.slow
def test_safety_under_random_fail_slow_follower(seed, fault, victim):
    """Whatever fault hits a follower: single leader, consistent prefixes."""
    cluster = Cluster(seed=seed)
    group = ["s1", "s2", "s3"]
    raft = deploy_depfast_raft(cluster, group, config=RaftConfig(preferred_leader="s1"))
    wait_for_leader(cluster, raft)
    FaultInjector(cluster).inject(victim, fault)
    workload = YcsbWorkload(cluster.rng.stream("ycsb"), record_count=100, value_size=100)
    driver = ClosedLoopDriver(cluster, group, workload, n_clients=8)
    driver.start()
    cluster.run(until_ms=4000.0)

    # Safety: at most one leader per term.
    leaders = [r for r in raft.values() if r.role.value == "leader"]
    assert len({r.term for r in leaders}) == len(leaders)

    # Log matching: committed prefixes agree everywhere.
    min_commit = min(r.commit_index for r in raft.values())
    if min_commit > 0:
        reference = raft["s1"]
        for node in raft.values():
            for index in range(1, min_commit + 1):
                assert node.log.entry_at(index).op == reference.log.entry_at(index).op

    # Applied never exceeds committed.
    for node in raft.values():
        assert node.last_applied <= node.commit_index <= node.log.last_index()

    # Progress: the healthy majority kept committing.
    assert driver.completed > 50
