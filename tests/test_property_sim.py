"""Property-based tests for the simulation substrate."""

import heapq
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.buffers import SendBuffer
from repro.net.message import Message
from repro.sim.kernel import Kernel
from repro.sim.metrics import LatencyRecorder
from repro.sim.resources import CpuResource, MemoryResource
from repro.workload.distributions import ZipfianKeys


# ---------------------------------------------------------------------------
# Kernel ordering
# ---------------------------------------------------------------------------
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=100
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=100),
)
def test_kernel_fires_in_nondecreasing_time_order(delays, cancel_mask):
    kernel = Kernel()
    fired = []
    calls = []
    for i, delay in enumerate(delays):
        calls.append(kernel.schedule(delay, lambda d=delay: fired.append(d)))
    for call, cancel in zip(calls, cancel_mask):
        if cancel:
            call.cancel()
    kernel.run_until_idle(max_time_ms=2e6)
    assert fired == sorted(fired)
    expected = sorted(
        delay
        for delay, (call, cancel) in zip(delays, zip(calls, cancel_mask + [False] * len(calls)))
        if not call.cancelled
    )
    assert sorted(fired) == expected


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_kernel_clock_never_goes_backwards(delays):
    kernel = Kernel()
    observed = []
    for delay in delays:
        kernel.schedule(delay, lambda: observed.append(kernel.now))
    kernel.run_until_idle()
    assert observed == sorted(observed)
    assert kernel.now == max(delays)


# ---------------------------------------------------------------------------
# Indexed bucket queue vs. reference heapq kernel
# ---------------------------------------------------------------------------
class _ReferenceKernel:
    """The pre-PR5 kernel, reduced to its semantics: one (time, seq) heap
    with lazy-deletion flags. The production indexed-bucket queue must be
    observationally identical to this under any interleaving of schedule /
    cancel / reschedule / run."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0
        self.fired = []

    def schedule(self, delay, tag, chain_delay=None):
        self._seq += 1
        entry = [self.now + delay, self._seq, tag, chain_delay, False]
        heapq.heappush(self._heap, entry)
        return entry

    @staticmethod
    def cancel(entry):
        entry[4] = True

    def pending(self):
        return sum(1 for entry in self._heap if not entry[4])

    def run(self, until_ms):
        while self._heap and self._heap[0][0] <= until_ms:
            time_ms, _seq, tag, chain_delay, cancelled = heapq.heappop(self._heap)
            if cancelled:
                continue
            self.now = time_ms
            self.fired.append((tag, time_ms))
            if chain_delay is not None:
                self.schedule(chain_delay, f"{tag}+chain")
        self.now = max(self.now, until_ms)


# Small palette with repeats so same-timestamp batches actually happen.
_DELAYS = st.sampled_from([0.0, 0.25, 1.0, 1.0, 2.5, 5.0, 10.0]) | st.floats(
    min_value=0.0, max_value=20.0, allow_nan=False
)


@given(data=st.data())
@settings(max_examples=150, deadline=None)
def test_indexed_queue_equivalent_to_reference_heapq(data):
    """Random push/pop/cancel/reschedule programs: bucket queue == heapq."""
    kernel = Kernel()
    ref = _ReferenceKernel()
    fired = []
    handles = []  # (ScheduledCall, reference entry)

    def fire(tag, chain_delay):
        fired.append((tag, kernel.now))
        if chain_delay is not None:
            kernel.schedule(chain_delay, fire, f"{tag}+chain", None)

    n_ops = data.draw(st.integers(min_value=1, max_value=40))
    for op_index in range(n_ops):
        op = data.draw(
            st.sampled_from(["schedule", "schedule", "chain", "cancel", "resched", "run"])
        )
        if op == "schedule" or (op in ("cancel", "resched") and not handles):
            delay = data.draw(_DELAYS)
            tag = f"e{op_index}"
            handles.append(
                (kernel.schedule(delay, fire, tag, None), ref.schedule(delay, tag))
            )
        elif op == "chain":
            delay = data.draw(_DELAYS)
            chain_delay = data.draw(_DELAYS)
            tag = f"e{op_index}"
            handles.append(
                (
                    kernel.schedule(delay, fire, tag, chain_delay),
                    ref.schedule(delay, tag, chain_delay),
                )
            )
        elif op == "cancel":
            call, entry = data.draw(st.sampled_from(handles))
            call.cancel()
            ref.cancel(entry)
        elif op == "resched":
            # Reschedule = cancel + schedule again at a fresh delay.
            call, entry = data.draw(st.sampled_from(handles))
            call.cancel()
            ref.cancel(entry)
            delay = data.draw(_DELAYS)
            tag = f"e{op_index}r"
            handles.append(
                (kernel.schedule(delay, fire, tag, None), ref.schedule(delay, tag))
            )
        else:  # run
            until = kernel.now + data.draw(_DELAYS)
            kernel.run(until_ms=until)
            ref.run(until)
            assert kernel.now == ref.now
            assert fired == ref.fired

    horizon = kernel.now + 1000.0
    kernel.run(until_ms=horizon)
    ref.run(horizon)
    assert fired == ref.fired
    assert kernel.now == ref.now
    assert kernel.pending() == ref.pending()


# ---------------------------------------------------------------------------
# CPU resource conservation
# ---------------------------------------------------------------------------
@given(
    costs=st.lists(
        st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    quota=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
)
def test_cpu_fifo_completion_time_is_work_over_rate(costs, quota):
    kernel = Kernel()
    cpu = CpuResource(kernel, base_rate=1.0)
    cpu.set_quota(quota)
    completions = []
    for cost in costs:
        cpu.submit(cost, on_done=lambda c=cost: completions.append((c, kernel.now)))
    kernel.run_until_idle(max_time_ms=1e9)
    # FIFO: completion order == submission order.
    assert [c for c, _t in completions] == costs
    # Total time == total work / rate (no idling between queued jobs).
    total_work = sum(costs)
    assert completions[-1][1] == math.isclose(
        completions[-1][1], total_work / quota, rel_tol=1e-6
    ) and completions[-1][1] > 0 or math.isclose(
        completions[-1][1], total_work / quota, rel_tol=1e-6
    )


@given(
    cost=st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
    changes=st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=10.0),   # at fraction of cost
            st.floats(min_value=0.05, max_value=1.0),   # new quota
        ),
        max_size=5,
    ),
)
def test_cpu_retiming_conserves_work(cost, changes):
    """However the rate changes mid-job, the job does exactly `cost` work."""
    kernel = Kernel()
    cpu = CpuResource(kernel, base_rate=1.0)
    done_at = []
    cpu.submit(cost, on_done=lambda: done_at.append(kernel.now))
    schedule_time = 0.0
    for at_offset, new_quota in changes:
        schedule_time += at_offset
        kernel.schedule(schedule_time, cpu.set_quota, new_quota)
    kernel.run_until_idle(max_time_ms=1e9)
    assert len(done_at) == 1
    # Reconstruct the work integral over the piecewise-constant rate.
    events = [(0.0, 1.0)]
    time_acc = 0.0
    for at_offset, new_quota in changes:
        time_acc += at_offset
        events.append((time_acc, new_quota))
    end = done_at[0]
    work = 0.0
    for (start, rate), (next_start, _next_rate) in zip(events, events[1:] + [(end, 0.0)]):
        span_end = min(next_start, end)
        if span_end > start:
            work += (span_end - start) * rate
    assert math.isclose(work, cost, rel_tol=1e-6, abs_tol=1e-6)


# ---------------------------------------------------------------------------
# Memory accounting
# ---------------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(min_value=0, max_value=10_000)),
        max_size=100,
    )
)
def test_memory_accounting_never_negative_and_balances(ops):
    memory = MemoryResource(capacity_bytes=10**9)
    expected = 0
    for op, size in ops:
        if op == "alloc":
            memory.allocate(size, owner="x")
            expected += size
        else:
            size = min(size, memory.usage_of("x"))
            memory.free(size, owner="x")
            expected -= size
        assert memory.used == expected
        assert memory.used >= 0
        assert memory.peak >= memory.used


# ---------------------------------------------------------------------------
# Send buffer byte conservation
# ---------------------------------------------------------------------------
@given(data=st.data())
def test_send_buffer_conserves_bytes(data):
    memory = MemoryResource(capacity_bytes=10**12)
    buffer = SendBuffer("a", "b", memory=memory)
    live = []
    n_ops = data.draw(st.integers(min_value=1, max_value=60))
    for _ in range(n_ops):
        op = data.draw(st.sampled_from(["push", "pop", "discard", "drain"]))
        if op == "push":
            message = Message("a", "b", "m", size_bytes=data.draw(st.integers(0, 5000)))
            buffer.push(message)
            live.append(message)
        elif op == "pop":
            popped = buffer.pop()
            if popped is not None:
                live.remove(popped)
        elif op == "discard" and live:
            victim = data.draw(st.sampled_from(live))
            if buffer.discard(victim.msg_id):
                live.remove(victim)
        elif op == "drain":
            buffer.drain_all()
            live.clear()
        expected = sum(message.size_bytes for message in live)
        assert buffer.bytes_queued == expected
        assert memory.used == expected


# ---------------------------------------------------------------------------
# Latency percentiles against a reference implementation
# ---------------------------------------------------------------------------
@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False), min_size=1, max_size=200
    ),
    p=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_percentile_matches_nearest_rank_reference(samples, p):
    recorder = LatencyRecorder()
    for i, latency in enumerate(samples):
        recorder.record(float(i), latency)
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    assert recorder.percentile(p) == ordered[rank - 1]


@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False), min_size=1, max_size=200
    )
)
def test_summary_invariants(samples):
    recorder = LatencyRecorder()
    for i, latency in enumerate(samples):
        recorder.record(float(i), latency)
    summary = recorder.summary()
    assert summary.minimum <= summary.p50 <= summary.p99 <= summary.maximum
    assert summary.minimum <= summary.mean <= summary.maximum
    assert summary.count == len(samples)


# ---------------------------------------------------------------------------
# Zipfian generator
# ---------------------------------------------------------------------------
@given(
    record_count=st.integers(min_value=2, max_value=10_000),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50)
def test_zipfian_ranks_in_range_and_skewed(record_count, seed):
    import random

    keys = ZipfianKeys(record_count, random.Random(seed))
    ranks = [keys.next_rank() for _ in range(500)]
    assert all(0 <= rank < record_count for rank in ranks)
    # Skew: the single hottest rank should beat the uniform expectation.
    from collections import Counter

    most_common_count = Counter(ranks).most_common(1)[0][1]
    assert most_common_count >= max(2, 500 // record_count)
