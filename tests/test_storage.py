"""Unit tests for WAL, entry cache and the KV state machine."""

import pytest

from repro.runtime.io_helper import IoHelperPool
from repro.sim.kernel import Kernel
from repro.sim.resources import DiskResource
from repro.storage.entry_cache import EntryCache
from repro.storage.kvstore import KvStore
from repro.storage.wal import WriteAheadLog


def make_wal(bandwidth=1.0, latency=1.0):
    kernel = Kernel()
    disk = DiskResource(kernel, bandwidth_mbps=bandwidth, op_latency_ms=latency)
    return kernel, WriteAheadLog(IoHelperPool(disk, node="n0"))


class TestWal:
    def test_append_and_sync_durability(self):
        kernel, wal = make_wal()
        wal.append(1000)
        assert wal.buffered_bytes == 1000
        assert wal.durable_bytes == 0
        event = wal.sync()
        kernel.run_until_idle()
        assert event.ready()
        assert wal.durable_bytes == 1000
        assert wal.buffered_bytes == 0

    def test_group_commit_batches_bytes(self):
        kernel, wal = make_wal()
        for _ in range(10):
            wal.append(100)
        wal.sync()
        kernel.run_until_idle()
        assert wal.durable_bytes == 1000
        assert wal.syncs == 1
        assert wal.appended_entries == 10

    def test_append_and_sync_shortcut(self):
        kernel, wal = make_wal()
        wal.append_and_sync(500)
        kernel.run_until_idle()
        assert wal.durable_bytes == 500

    def test_sync_time_scales_with_bytes(self):
        kernel, wal = make_wal(bandwidth=1.0, latency=0.0)  # 1000 B/ms
        wal.append(10_000)
        event = wal.sync()
        kernel.run_until_idle()
        # 10000 bytes + fsync barrier bytes at 1000 B/ms.
        assert event.triggered_at > 10.0

    def test_read_goes_to_disk(self):
        kernel, wal = make_wal(bandwidth=1.0, latency=2.0)
        event = wal.read(3000)
        kernel.run_until_idle()
        assert event.triggered_at == pytest.approx(5.0)

    def test_empty_buffer_sync_completes_without_disk_trip(self):
        kernel, wal = make_wal()
        event = wal.sync()  # nothing buffered: no platter traffic
        assert event.ready()  # pre-completed, no virtual time consumed
        assert wal.noop_syncs == 1
        assert wal.syncs == 0
        assert kernel.now == 0.0

    def test_empty_sync_fires_on_durable_immediately(self):
        _, wal = make_wal()
        fired = []
        wal.sync(on_durable=lambda: fired.append(True))
        assert fired == [True]

    def test_negative_sizes_rejected(self):
        _, wal = make_wal()
        with pytest.raises(ValueError):
            wal.append(-1)
        with pytest.raises(ValueError):
            wal.read(-1)


class TestEntryCache:
    def test_put_get_hit(self):
        cache = EntryCache(max_entries=4)
        cache.put(1, "a")
        hit, entry = cache.get(1)
        assert hit and entry == "a"
        assert cache.hits == 1

    def test_eviction_of_oldest_index(self):
        cache = EntryCache(max_entries=3)
        for index in range(1, 6):
            cache.put(index, f"e{index}")
        hit, _ = cache.get(1)
        assert not hit
        assert cache.misses == 1
        hit, entry = cache.get(5)
        assert hit and entry == "e5"
        assert cache.lowest_cached_index() == 3

    def test_contains_range(self):
        cache = EntryCache(max_entries=10)
        for index in range(5, 10):
            cache.put(index, index)
        assert cache.contains_range(5, 9)
        assert not cache.contains_range(4, 9)

    def test_lowest_index_empty(self):
        assert EntryCache().lowest_cached_index() is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EntryCache(max_entries=0)


class TestKvStore:
    def test_put_get_delete_cycle(self):
        store = KvStore()
        store.apply(("put", "k", "v1"))
        assert store.apply(("get", "k")) == "v1"
        store.apply(("put", "k", "v2"))
        assert store.apply(("delete", "k")) == "v2"
        assert store.apply(("get", "k")) is None
        assert store.applied == 5

    def test_noop(self):
        store = KvStore()
        assert store.apply(("noop",)) is None

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            KvStore().apply(("frobnicate", "x"))

    def test_checksum_equal_for_same_state(self):
        a, b = KvStore(), KvStore()
        a.apply(("put", "x", 1))
        a.apply(("put", "y", 2))
        b.apply(("put", "y", 2))
        b.apply(("put", "x", 1))
        assert a.checksum() == b.checksum()

    def test_checksum_differs_for_different_state(self):
        a, b = KvStore(), KvStore()
        a.apply(("put", "x", 1))
        b.apply(("put", "x", 2))
        assert a.checksum() != b.checksum()
