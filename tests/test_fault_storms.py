"""Randomized fault-storm injection: safety invariants under chaos.

Hypothesis drives sequences of transient Table 1 faults across followers
(never a majority at once) while a workload runs; afterwards the group
must still satisfy Raft's safety invariants and be able to converge.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.faults.catalog import fault_names
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, wait_for_leader
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]

fault_event = st.tuples(
    st.sampled_from(["s2", "s3"]),                    # victim follower
    st.sampled_from(fault_names()),                   # fault type
    st.floats(min_value=500.0, max_value=4000.0),     # start time
    st.floats(min_value=200.0, max_value=1500.0),     # duration
)


@pytest.mark.slow
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    storm=st.lists(fault_event, min_size=1, max_size=4),
)
@settings(max_examples=5, deadline=None)
def test_safety_through_transient_fault_storm(seed, storm):
    cluster = Cluster(seed=seed)
    raft = deploy_depfast_raft(cluster, GROUP, config=RaftConfig(preferred_leader="s1"))
    wait_for_leader(cluster, raft)
    injector = FaultInjector(cluster)

    # Overlapping schedules on one victim are fine: the injector queues a
    # scheduled fault that fires while another is active and applies it,
    # with its full duration, when the active one clears.
    for victim, fault, start, duration in storm:
        injector.inject_transient(victim, fault, at_ms=start, duration_ms=duration)

    workload = YcsbWorkload(cluster.rng.stream("y"), record_count=200, value_size=200)
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=8)
    driver.start()
    cluster.run(until_ms=7000.0)

    # Safety invariants hold mid- and post-storm.
    leaders = [r for r in raft.values() if r.role.value == "leader"]
    assert len(leaders) <= 1 or len({r.term for r in leaders}) == len(leaders)
    min_commit = min(r.commit_index for r in raft.values())
    reference = raft["s1"]
    for node in raft.values():
        for index in range(node.log.base_index + 1, min_commit + 1):
            assert node.log.entry_at(index).op == reference.log.entry_at(index).op
        assert node.last_applied <= node.commit_index <= node.log.last_index()
    # Liveness: the healthy majority kept serving throughout.
    assert driver.completed > 100
    assert not raft["s1"].node.crashed
