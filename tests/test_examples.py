"""Smoke tests: every example script runs to completion and prints sense.

These import each example module and call its ``main()`` so the examples
can't rot. The slower ones are trimmed via module attributes where the
example exposes knobs; otherwise they run as shipped (a few seconds to a
minute of simulated work each).
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "QuorumEvent" in out
    assert "faster" in out


def test_replicated_kv(capsys):
    out = run_example("replicated_kv", capsys)
    assert "elected leader: s1" in out
    assert "new leader" in out
    assert "result='python'" in out


def test_fastpath_consensus(capsys):
    out = run_example("fastpath_consensus", capsys)
    assert out.count("fast ") >= 2
    assert "slow " in out


@pytest.mark.slow
def test_spg_analysis(capsys):
    out = run_example("spg_analysis", capsys)
    assert "PASS" in out     # depfast
    assert "FAIL" in out     # mongo-like
    assert "2/3" in out


def test_sharded_transactions(capsys):
    out = run_example("sharded_transactions", capsys)
    assert "COMMIT" in out
    assert "ABORT (voted-no)" in out


@pytest.mark.slow
def test_leader_mitigation(capsys):
    out = run_example("leader_mitigation", capsys)
    assert "suspected s1" in out
    assert "final leader" in out


@pytest.mark.slow
def test_fault_tolerance_demo(capsys):
    out = run_example("fault_tolerance_demo", capsys)
    assert "mongo-like" in out and "depfast" in out
    assert "throughput drop" in out


@pytest.mark.slow
def test_chain_vs_quorum(capsys):
    out = run_example("chain_vs_quorum", capsys)
    assert "chain" in out and "depfast" in out
    assert "FAIL" in out and "PASS" in out


def test_paxos_kv(capsys):
    out = run_example("paxos_kv", capsys)
    assert "proposer: s1" in out
    assert "new proposer" in out
    assert "result='paxos'" in out
