"""Tests for the sharded transactional store (repro.txn)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.txn.shard_map import ShardMap
from repro.txn.state_machine import TxnKvStore
from repro.txn.store import deploy_sharded_store


# ---------------------------------------------------------------------------
# ShardMap
# ---------------------------------------------------------------------------
class TestShardMap:
    MAP = ShardMap({"a": ["s1", "s2"], "b": ["s3", "s4"]})

    def test_routing_is_deterministic_and_total(self):
        for key in ("x", "y", "user42"):
            shard = self.MAP.shard_for(key)
            assert shard in ("a", "b")
            assert self.MAP.shard_for(key) == shard

    def test_split_by_shard_partitions(self):
        keys = [f"k{i}" for i in range(50)]
        grouped = self.MAP.split_by_shard(keys)
        regrouped = [key for members in grouped.values() for key in members]
        assert sorted(regrouped) == sorted(keys)

    def test_spreads_keys_across_shards(self):
        grouped = self.MAP.split_by_shard(f"k{i}" for i in range(200))
        assert len(grouped) == 2

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            ShardMap({})


# ---------------------------------------------------------------------------
# TxnKvStore state machine (pure, no sim)
# ---------------------------------------------------------------------------
class TestTxnKvStore:
    def test_prepare_commit_applies_writes(self):
        sm = TxnKvStore()
        assert sm.apply(("txn_prepare", "t1", (("x", 1), ("y", 2)))) == ("yes",)
        assert sm.apply(("txn_commit", "t1")) == ("committed", 2)
        assert sm.get("x") == 1
        assert sm.get("y") == 2
        assert sm.locked_keys() == {}

    def test_conflicting_prepare_votes_no(self):
        sm = TxnKvStore()
        sm.apply(("txn_prepare", "t1", (("x", 1),)))
        assert sm.apply(("txn_prepare", "t2", (("x", 9),))) == ("no", "t1")
        assert sm.prepares_rejected == 1

    def test_abort_releases_locks(self):
        sm = TxnKvStore()
        sm.apply(("txn_prepare", "t1", (("x", 1),)))
        assert sm.apply(("txn_abort", "t1")) == ("aborted",)
        assert sm.apply(("txn_prepare", "t2", (("x", 9),))) == ("yes",)
        sm.apply(("txn_commit", "t2"))
        assert sm.get("x") == 9

    def test_uncommitted_writes_invisible(self):
        sm = TxnKvStore()
        sm.apply(("put", "x", "old"))
        sm.apply(("txn_prepare", "t1", (("x", "new"),)))
        assert sm.apply(("get", "x")) == "old"

    def test_commit_of_unknown_txn_is_stale(self):
        sm = TxnKvStore()
        assert sm.apply(("txn_commit", "ghost")) == ("stale",)
        assert sm.apply(("txn_abort", "ghost")) == ("aborted",)

    def test_duplicate_prepare_keeps_vote(self):
        sm = TxnKvStore()
        assert sm.apply(("txn_prepare", "t1", (("x", 1),))) == ("yes",)
        assert sm.apply(("txn_prepare", "t1", (("x", 1),))) == ("yes",)
        assert sm.prepares_accepted == 1

    def test_plain_kv_ops_still_work(self):
        sm = TxnKvStore()
        sm.apply(("put", "k", "v"))
        assert sm.apply(("get", "k")) == "v"


# ---------------------------------------------------------------------------
# End-to-end 2PC over DepFastRaft shards
# ---------------------------------------------------------------------------
def deploy(n_shards=2, seed=23):
    cluster = Cluster(seed=seed)
    store = deploy_sharded_store(cluster, n_shards=n_shards, replicas=3)
    store.wait_for_leaders()
    client = cluster.add_client("cx")
    client.start()
    return cluster, store, store.coordinator(client)


def run_txn(cluster, coordinator, writes):
    outcomes = []

    def script():
        outcome = yield from coordinator.transact(writes)
        outcomes.append(outcome)

    coordinator.node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 30_000.0)
    assert outcomes, "transaction did not finish"
    return outcomes[0]


def read(cluster, coordinator, key):
    results = []

    def script():
        ok, value = yield from coordinator.get(key)
        results.append((ok, value))

    coordinator.node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 10_000.0)
    return results[0]


def cross_shard_writes(shard_map, n_keys=4):
    """A write set guaranteed to span at least two shards."""
    writes = {}
    seen = set()
    i = 0
    while len(seen) < 2 or len(writes) < n_keys:
        key = f"k{i}"
        writes[key] = f"v{i}"
        seen.add(shard_map.shard_for(key))
        i += 1
    return writes


class TestDistributedTxn:
    def test_cross_shard_commit_and_read_back(self):
        cluster, store, coordinator = deploy()
        writes = cross_shard_writes(store.shard_map)
        outcome = run_txn(cluster, coordinator, writes)
        assert outcome.committed
        assert len(outcome.shards) >= 2
        for key, value in writes.items():
            assert read(cluster, coordinator, key) == (True, value)

    def test_atomicity_all_replicas_converge(self):
        cluster, store, coordinator = deploy()
        writes = cross_shard_writes(store.shard_map)
        outcome = run_txn(cluster, coordinator, writes)
        assert outcome.committed
        cluster.run(until_ms=cluster.kernel.now + 2000.0)
        for shard in store.shard_map.shard_names():
            machines = store.state_machines(shard)
            checksums = {sm.checksum() for sm in machines}
            assert len(checksums) == 1
            assert all(sm.locked_keys() == {} for sm in machines)

    def test_conflicting_txns_one_aborts(self):
        cluster, store, coordinator = deploy()
        # Pre-lock a key by preparing a txn directly on its shard, then
        # run a transaction over the same key: it must abort on the "no".
        victim_key = "k0"
        shard = store.shard_map.shard_for(victim_key)
        leader = store.leader_of(shard)
        blocker = []

        def preseed():
            ok, result = yield from coordinator._clients[shard].execute(
                ("txn_prepare", "blocker-txn", ((victim_key, "held"),)), size_bytes=64
            )
            blocker.append((ok, result))

        coordinator.node.runtime.spawn(preseed())
        cluster.run(until_ms=cluster.kernel.now + 5000.0)
        assert blocker == [(True, ("yes",))]

        writes = cross_shard_writes(store.shard_map)
        writes[victim_key] = "mine"
        outcome = run_txn(cluster, coordinator, writes)
        assert not outcome.committed
        assert outcome.reason == "voted-no"
        # Aborted txn left no locks anywhere except the blocker's.
        cluster.run(until_ms=cluster.kernel.now + 2000.0)
        for name in store.shard_map.shard_names():
            for sm in store.state_machines(name):
                locked = sm.locked_keys()
                assert set(locked.values()) <= {"blocker-txn"}

    def test_abort_then_retry_succeeds_after_release(self):
        cluster, store, coordinator = deploy()
        key = "k0"
        shard = store.shard_map.shard_for(key)

        def preseed_and_release():
            yield from coordinator._clients[shard].execute(
                ("txn_prepare", "blocker", ((key, "held"),)), size_bytes=64
            )
            yield from coordinator._clients[shard].execute(
                ("txn_abort", "blocker"), size_bytes=64
            )

        coordinator.node.runtime.spawn(preseed_and_release())
        cluster.run(until_ms=cluster.kernel.now + 5000.0)
        outcome = run_txn(cluster, coordinator, {key: "mine"})
        assert outcome.committed
        assert read(cluster, coordinator, key) == (True, "mine")

    def test_fail_slow_minority_in_every_shard_tolerated(self):
        cluster, store, coordinator = deploy()
        injector = FaultInjector(cluster)
        for shard in store.shard_map.shard_names():
            group = store.shard_map.group_of(shard)
            injector.inject(group[-1], "cpu_slow")  # one slow follower each
        writes = cross_shard_writes(store.shard_map)
        outcome = run_txn(cluster, coordinator, writes)
        assert outcome.committed
        assert outcome.latency_ms < 1000.0  # not gated on the slow nodes

    def test_empty_transaction_rejected(self):
        cluster, store, coordinator = deploy(n_shards=1)
        with pytest.raises(ValueError):
            next(coordinator.transact({}))

    def test_single_shard_transaction(self):
        cluster, store, coordinator = deploy(n_shards=1)
        outcome = run_txn(cluster, coordinator, {"a": 1, "b": 2})
        assert outcome.committed
        assert outcome.shards == ["shard0"]
        assert read(cluster, coordinator, "a") == (True, 1)
