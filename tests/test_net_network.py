"""Network integration tests: delivery, flow control, backpressure, crash."""

import pytest

from repro.net.inbox import Inbox
from repro.net.link import Link
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.sim.resources import MemoryResource, NicResource


def make_net(window=None, buffer_limit=None, link=None):
    kernel = Kernel()
    net = Network(kernel, default_link=link or Link(latency_ms=1.0, bandwidth_mbps=1000.0))
    if window:
        net.set_window_bytes(window)
    boxes = {}
    mems = {}
    for node in ("a", "b"):
        boxes[node] = Inbox(node)
        mems[node] = MemoryResource(capacity_bytes=10**9)
        net.attach(node, boxes[node], nic=NicResource(0.0), memory=mems[node],
                   buffer_limit=buffer_limit)
    return kernel, net, boxes, mems


def consume_all(inbox):
    """Drain an inbox, acking everything; returns the messages."""
    out = []
    while len(inbox):
        ev = inbox.get_event()
        assert ev.ready()
        out.append(ev.value)
    return out


class TestDelivery:
    def test_message_arrives_after_latency_and_transfer(self):
        kernel, net, boxes, _ = make_net(
            link=Link(latency_ms=2.0, bandwidth_mbps=1.0)  # 1000 B/ms
        )
        msg = Message("a", "b", "ping", size_bytes=1000 - 64)  # 1000B on wire
        net.send(msg)
        kernel.run_until_idle()
        assert msg.delivered_at == pytest.approx(3.0)  # 1ms transfer + 2ms prop
        assert len(boxes["b"]) == 1

    def test_nic_delay_adds_to_delivery(self):
        kernel, net, boxes, _ = make_net()
        net.nic_of("b").set_extra_delay(400.0)  # Table 1 network slow
        msg = Message("a", "b", "ping", size_bytes=0)
        net.send(msg)
        kernel.run_until_idle()
        assert msg.delivered_at > 400.0

    def test_fifo_order_preserved_per_connection(self):
        kernel, net, boxes, _ = make_net()
        sent = [Message("a", "b", f"m{i}", size_bytes=10) for i in range(5)]
        for msg in sent:
            net.send(msg)
        kernel.run_until_idle()
        got = consume_all(boxes["b"])
        assert [m.method for m in got] == [f"m{i}" for i in range(5)]

    def test_serialization_pipelines_large_messages(self):
        kernel, net, _, _ = make_net(link=Link(latency_ms=0.0, bandwidth_mbps=1.0))
        first = Message("a", "b", "big", size_bytes=10_000 - 64)
        second = Message("a", "b", "big", size_bytes=10_000 - 64)
        net.send(first)
        net.send(second)
        kernel.run_until_idle()
        assert first.delivered_at == pytest.approx(10.0)
        assert second.delivered_at == pytest.approx(20.0)


class TestFlowControl:
    def test_window_blocks_excess_into_buffer(self):
        kernel, net, boxes, _ = make_net(window=1000)
        conn = net.connection("a", "b")
        for _ in range(5):
            net.send(Message("a", "b", "w", size_bytes=400 - 64))  # 400B each
        # Only 2 fit the 1000B window; 3 buffered.
        assert len(conn.buffer) == 3
        kernel.run_until_idle()
        # Nothing consumed: window still full, buffer still holds the rest.
        assert len(conn.buffer) == 3
        assert len(boxes["b"]) == 2

    def test_consumption_acks_open_window(self):
        kernel, net, boxes, _ = make_net(window=1000)
        conn = net.connection("a", "b")
        for _ in range(5):
            net.send(Message("a", "b", "w", size_bytes=400 - 64))
        kernel.run_until_idle()
        consume_all(boxes["b"])  # acks release window -> buffer drains
        kernel.run_until_idle()
        consume_all(boxes["b"])
        kernel.run_until_idle()
        assert len(conn.buffer) == 0
        assert conn.delivered == 5

    def test_slow_consumer_grows_sender_backlog_memory(self):
        kernel, net, boxes, mems = make_net(window=1000)
        for _ in range(100):
            net.send(Message("a", "b", "w", size_bytes=400 - 64))
        kernel.run_until_idle()
        # Consumer never consumes: leader-side memory holds ~98 messages.
        assert mems["a"].used == pytest.approx(98 * 400, rel=0.05)
        assert net.buffered_bytes_from("a") > 0

    def test_buffer_order_respected_before_new_sends(self):
        kernel, net, boxes, _ = make_net(window=1000)
        first = Message("a", "b", "first", size_bytes=900 - 64)
        blocked = Message("a", "b", "blocked", size_bytes=900 - 64)
        net.send(first)
        net.send(blocked)  # buffered: window full
        small = Message("a", "b", "small", size_bytes=10)
        net.send(small)  # must queue behind `blocked`, not jump ahead
        kernel.run_until_idle()
        got = consume_all(boxes["b"])
        assert [m.method for m in got] == ["first"]
        kernel.run_until_idle()
        got += consume_all(boxes["b"])
        kernel.run_until_idle()
        got += consume_all(boxes["b"])
        assert [m.method for m in got] == ["first", "blocked", "small"]


class TestCrash:
    def test_crashed_receiver_drops_traffic_and_releases_window(self):
        kernel, net, boxes, _ = make_net(window=1000)
        conn = net.connection("a", "b")
        net.send(Message("a", "b", "w", size_bytes=400 - 64))
        net.crash("b")
        kernel.run_until_idle()
        assert len(boxes["b"]) == 0
        assert conn.in_flight == 0

    def test_crashed_sender_stops_sending(self):
        kernel, net, boxes, _ = make_net()
        net.crash("a")
        net.send(Message("a", "b", "w", size_bytes=10))
        kernel.run_until_idle()
        assert len(boxes["b"]) == 0

    def test_crash_drains_buffers(self):
        kernel, net, _, mems = make_net(window=500)
        for _ in range(10):
            net.send(Message("a", "b", "w", size_bytes=400 - 64))
        assert net.buffered_bytes_from("a") > 0
        net.crash("b")
        assert net.buffered_bytes_from("a") == 0
        assert mems["a"].used == 0


class TestTopology:
    def test_unknown_node_rejected(self):
        kernel = Kernel()
        net = Network(kernel)
        with pytest.raises(ValueError):
            net.send(Message("ghost", "also-ghost", "x"))

    def test_duplicate_attach_rejected(self):
        kernel, net, _, _ = make_net()
        with pytest.raises(ValueError):
            net.attach("a", Inbox("a"))

    def test_per_pair_link_override(self):
        kernel, net, boxes, _ = make_net()
        net.set_link("a", "b", Link(latency_ms=100.0, bandwidth_mbps=1000.0))
        msg = Message("a", "b", "x", size_bytes=0)
        net.send(msg)
        kernel.run_until_idle()
        assert msg.delivered_at >= 100.0


class TestInbox:
    def test_direct_handoff_to_waiter(self):
        inbox = Inbox("n")
        ev = inbox.get_event()
        assert not ev.ready()
        acked = []
        inbox.put(Message("a", "n", "x"), ack=lambda: acked.append(True))
        assert ev.ready()
        assert acked == [True]

    def test_queued_message_acks_at_get(self):
        inbox = Inbox("n")
        acked = []
        inbox.put(Message("a", "n", "x"), ack=lambda: acked.append(True))
        assert acked == []
        ev = inbox.get_event()
        assert ev.ready()
        assert acked == [True]

    def test_single_consumer_enforced(self):
        inbox = Inbox("n")
        inbox.get_event()
        with pytest.raises(RuntimeError):
            inbox.get_event()

    def test_cancel_get_allows_new_waiter(self):
        inbox = Inbox("n")
        inbox.get_event()
        inbox.cancel_get()
        inbox.get_event()  # no error


class TestPartitions:
    def test_blocked_pair_drops_at_delivery(self):
        kernel, net, boxes, _ = make_net()
        net.block("a", "b")
        net.send(Message("a", "b", "x", size_bytes=100))
        kernel.run_until_idle()
        assert len(boxes["b"]) == 0
        # Symmetric by default.
        net.send(Message("b", "a", "y", size_bytes=100))
        kernel.run_until_idle()
        assert len(boxes["a"]) == 0

    def test_asymmetric_block(self):
        kernel, net, boxes, _ = make_net()
        net.block("a", "b", symmetric=False)
        net.send(Message("b", "a", "y", size_bytes=100))
        kernel.run_until_idle()
        assert len(boxes["a"]) == 1

    def test_inflight_messages_lost_when_partition_lands(self):
        kernel, net, boxes, _ = make_net(
            link=Link(latency_ms=10.0, bandwidth_mbps=1000.0)
        )
        net.send(Message("a", "b", "x", size_bytes=100))
        kernel.run(5.0)  # message is on the wire
        net.block("a", "b")
        kernel.run_until_idle()
        assert len(boxes["b"]) == 0

    def test_heal_restores_delivery_and_window(self):
        kernel, net, boxes, _ = make_net()
        net.block("a", "b")
        for _ in range(5):
            net.send(Message("a", "b", "x", size_bytes=100))
        kernel.run_until_idle()
        net.heal()
        net.send(Message("a", "b", "y", size_bytes=100))
        kernel.run_until_idle()
        msgs = consume_all(boxes["b"])
        assert [m.method for m in msgs] == ["y"]

    def test_partition_and_isolate_helpers(self):
        kernel, net, _, _ = make_net()
        net.partition(["a"], ["b"])
        assert net.is_blocked("a", "b") and net.is_blocked("b", "a")
        net.heal()
        net.isolate("a")
        assert net.is_blocked("b", "a")


class TestMessageLoss:
    def test_loss_rate_needs_rng(self):
        kernel, net, _, _ = make_net()
        net.set_loss_rate("a", "b", 0.5)
        with pytest.raises(RuntimeError):
            net.send(Message("a", "b", "x", size_bytes=100))
            kernel.run_until_idle()

    def test_seeded_loss_is_deterministic_and_partial(self):
        import random

        counts = []
        for _ in range(2):
            kernel, net, boxes, _ = make_net()
            net.use_loss_rng(random.Random(42))
            net.set_loss_rate("a", "b", 0.5)
            for i in range(40):
                net.send(Message("a", "b", f"m{i}", size_bytes=100))
            kernel.run_until_idle()
            counts.append(len(consume_all(boxes["b"])))
        assert counts[0] == counts[1]
        assert 0 < counts[0] < 40

    def test_clearing_loss_restores_delivery(self):
        import random

        kernel, net, boxes, _ = make_net()
        net.use_loss_rng(random.Random(1))
        net.set_loss_rate("a", "b", 1.0)
        net.send(Message("a", "b", "x", size_bytes=100))
        kernel.run_until_idle()
        assert len(boxes["b"]) == 0
        net.set_loss_rate("a", "b", 0.0)
        net.send(Message("a", "b", "y", size_bytes=100))
        kernel.run_until_idle()
        assert len(consume_all(boxes["b"])) == 1


class TestRestart:
    def test_restart_requires_crash(self):
        kernel, net, boxes, _ = make_net()
        with pytest.raises(ValueError):
            net.restart("a", Inbox("a"))

    def test_restart_swaps_inbox_and_resets_connections(self):
        kernel, net, boxes, _ = make_net(
            link=Link(latency_ms=10.0, bandwidth_mbps=1000.0)
        )
        net.send(Message("b", "a", "pre-crash", size_bytes=100))
        kernel.run(5.0)  # in flight toward a
        net.crash("a")
        fresh = Inbox("a")
        net.restart("a", fresh)
        # The segment sent before the reset is dropped (TCP reset
        # semantics); traffic sent after the restart is delivered.
        net.send(Message("b", "a", "post-restart", size_bytes=100))
        kernel.run_until_idle()
        assert [m.method for m in consume_all(fresh)] == ["post-restart"]
        assert len(boxes["a"]) == 0
