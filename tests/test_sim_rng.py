"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=42).stream("net")
    b = RngRegistry(seed=42).stream("net")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_give_independent_streams():
    reg = RngRegistry(seed=42)
    xs = [reg.stream("net").random() for _ in range(5)]
    ys = [reg.stream("disk").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("net")
    b = RngRegistry(seed=2).stream("net")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_stateful_and_cached():
    reg = RngRegistry(seed=7)
    s1 = reg.stream("x")
    first = s1.random()
    s2 = reg.stream("x")
    assert s1 is s2
    assert s2.random() != first or True  # same object, state advanced


def test_order_of_stream_creation_does_not_matter():
    reg_a = RngRegistry(seed=9)
    reg_b = RngRegistry(seed=9)
    # Create in opposite orders.
    a_net = [reg_a.stream("net").random() for _ in range(3)]
    a_disk = [reg_a.stream("disk").random() for _ in range(3)]
    b_disk = [reg_b.stream("disk").random() for _ in range(3)]
    b_net = [reg_b.stream("net").random() for _ in range(3)]
    assert a_net == b_net
    assert a_disk == b_disk


def test_fork_derives_reproducible_children():
    child_a = RngRegistry(seed=5).fork("node-1")
    child_b = RngRegistry(seed=5).fork("node-1")
    assert child_a.seed == child_b.seed
    assert child_a.stream("x").random() == child_b.stream("x").random()


def test_fork_children_differ_by_name():
    root = RngRegistry(seed=5)
    assert root.fork("node-1").seed != root.fork("node-2").seed
