"""Unit tests for metrics primitives."""

import random

import pytest

from repro.sim.metrics import (
    Counter,
    Gauge,
    LatencyRecorder,
    LatencySummary,
    MetricsRegistry,
    P2Quantile,
    TimeWeightedValue,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("ops")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_mark_window(self):
        c = Counter()
        c.inc(10)
        c.mark()
        c.inc(3)
        assert c.since_mark() == 3
        assert c.value == 13

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_add_and_peak(self):
        g = Gauge("depth")
        g.set(5)
        g.add(3)
        g.set(2)
        assert g.value == 2
        assert g.peak == 8


class TestTimeWeightedValue:
    def test_average_of_step_function(self):
        tw = TimeWeightedValue(now=0.0, value=0.0)
        tw.update(10.0, 4.0)   # 0 for 10ms
        tw.update(20.0, 0.0)   # 4 for 10ms
        assert tw.average(now=20.0) == pytest.approx(2.0)

    def test_average_includes_current_segment(self):
        tw = TimeWeightedValue(now=0.0, value=2.0)
        assert tw.average(now=10.0) == pytest.approx(2.0)

    def test_time_backwards_rejected(self):
        tw = TimeWeightedValue(now=5.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 1.0)


class TestLatencyRecorder:
    def test_summary_basic_stats(self):
        rec = LatencyRecorder()
        for i, latency in enumerate([10.0, 20.0, 30.0, 40.0]):
            rec.record(completed_at=float(i), latency_ms=latency)
        s = rec.summary()
        assert s.count == 4
        assert s.mean == pytest.approx(25.0)
        assert s.minimum == 10.0
        assert s.maximum == 40.0
        assert s.p50 == 20.0

    def test_window_excludes_warmup(self):
        rec = LatencyRecorder()
        rec.record(completed_at=5.0, latency_ms=1000.0)   # warmup junk
        rec.record(completed_at=50.0, latency_ms=10.0)
        rec.record(completed_at=60.0, latency_ms=20.0)
        s = rec.summary(window_start=40.0, window_end=100.0)
        assert s.count == 2
        assert s.mean == pytest.approx(15.0)

    def test_p99_nearest_rank(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record(completed_at=float(i), latency_ms=float(i + 1))
        assert rec.percentile(99) == 99.0
        assert rec.percentile(100) == 100.0
        assert rec.percentile(0) == 1.0

    def test_empty_summary_is_zeroes(self):
        s = LatencyRecorder().summary()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.p99 == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(0.0, -1.0)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(101)


class TestLatencySampling:
    def test_stride_one_retains_everything(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record(completed_at=float(i), latency_ms=float(i + 1))
        assert rec.count() == 100
        assert len(rec._samples) == 100

    def test_stride_bounds_retained_samples(self):
        rec = LatencyRecorder(sample_stride=10)
        for i in range(1000):
            rec.record(completed_at=float(i), latency_ms=float(i + 1))
        assert rec.count() == 1000           # exact, sampling-independent
        assert len(rec._samples) == 100      # every 10th retained

    def test_sampled_aggregates_stay_exact(self):
        rec = LatencyRecorder(sample_stride=7)
        latencies = [float((i * 13) % 101) for i in range(500)]
        for i, latency in enumerate(latencies):
            rec.record(completed_at=float(i), latency_ms=latency)
        s = rec.summary()
        assert s.count == 500
        assert s.mean == pytest.approx(sum(latencies) / len(latencies))
        assert s.minimum == min(latencies)
        assert s.maximum == max(latencies)

    def test_sampled_percentiles_track_distribution(self):
        import random

        rng = random.Random(42)
        rec = LatencyRecorder(sample_stride=10)
        for i in range(10_000):
            rec.record(completed_at=float(i), latency_ms=rng.uniform(0.0, 100.0))
        # Uniform 0..100: sampled p50 must land near the true median.
        assert abs(rec.summary().p50 - 50.0) <= 5.0

    def test_sampling_is_deterministic(self):
        def run():
            rec = LatencyRecorder(sample_stride=3)
            for i in range(100):
                rec.record(completed_at=float(i), latency_ms=float(i))
            return list(rec._samples)

        assert run() == run()

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder(sample_stride=0)

    def test_registry_stride_applies_to_recorders(self):
        reg = MetricsRegistry("n1", latency_stride=5)
        assert reg.latency("put").sample_stride == 5
        reg.set_latency_stride(2)
        assert reg.latency("put").sample_stride == 2       # existing updated
        assert reg.latency("get").sample_stride == 2       # new inherits


class TestMetricsRegistry:
    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry("node1")
        assert reg.counter("ops") is reg.counter("ops")
        assert reg.gauge("depth") is reg.gauge("depth")
        assert reg.latency("put") is reg.latency("put")

    def test_snapshot_qualifies_names(self):
        reg = MetricsRegistry("node1")
        reg.counter("ops").inc(3)
        reg.gauge("depth").set(7.0)
        snap = reg.snapshot()
        assert snap["node1.ops"] == 3.0
        assert snap["node1.depth"] == 7.0

    def test_unprefixed_registry(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc()
        assert reg.snapshot() == {"ops": 1.0}


class TestP2Quantile:
    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_few_samples_use_exact_nearest_rank(self):
        q = P2Quantile(0.5)
        assert q.value() == 0.0  # no data yet
        for x in (5.0, 1.0, 3.0):
            q.observe(x)
        # sorted [1, 3, 5], rank ceil(0.5 * 3) = 2 -> 3
        assert q.value() == 3.0
        assert q.count == 3

    def test_tracks_uniform_p95_within_tolerance(self):
        rng = random.Random(42)
        q = P2Quantile(0.95)
        for _ in range(5_000):
            q.observe(rng.uniform(0.0, 100.0))
        assert abs(q.value() - 95.0) < 2.0

    def test_tracks_bimodal_p95(self):
        # 90% fast (~1ms), 10% slow (~100ms): P95 sits in the slow mode —
        # the shape a hedge trigger must see through.
        rng = random.Random(7)
        q = P2Quantile(0.95)
        for _ in range(10_000):
            if rng.random() < 0.9:
                q.observe(rng.uniform(0.5, 1.5))
            else:
                q.observe(rng.uniform(90.0, 110.0))
        assert q.value() > 50.0

    def test_deterministic_for_identical_streams(self):
        rng = random.Random(3)
        stream = [rng.expovariate(0.2) for _ in range(2_000)]
        a, b = P2Quantile(0.99), P2Quantile(0.99)
        for x in stream:
            a.observe(x)
            b.observe(x)
        assert a.value() == b.value()


class TestBatchedFlush:
    """The hot-path contract: record() is one list append; the aggregate
    fold runs lazily at the first read and is bit-identical to eager."""

    def test_record_is_lazy_until_first_read(self):
        rec = LatencyRecorder("rpc")
        for i in range(10):
            rec.record(float(i), 1.0 + i)
        assert len(rec._pending) == 10  # nothing folded yet
        assert rec.count() == 10  # first read folds...
        assert rec._pending == []  # ...and drains the batch

    def test_lazy_fold_matches_eager_reads(self):
        rng = random.Random(5)
        stream = [(float(i), rng.uniform(0.1, 50.0)) for i in range(500)]
        eager, lazy = LatencyRecorder(sample_stride=3), LatencyRecorder(
            sample_stride=3
        )
        for at, latency in stream:
            eager.record(at, latency)
            eager.count()  # force a per-record fold
            lazy.record(at, latency)
        lazy_summary, eager_summary = lazy.summary(), eager.summary()
        for field in LatencySummary.__slots__:
            assert getattr(lazy_summary, field) == getattr(eager_summary, field)
        assert lazy.in_window() == eager.in_window()
        for p in (50.0, 99.0, 99.9):
            assert lazy.percentile(p) == eager.percentile(p)

    def test_stride_change_flushes_under_old_stride(self):
        rec = LatencyRecorder(sample_stride=1)
        for i in range(6):
            rec.record(float(i), float(i))
        rec.sample_stride = 100  # must fold the first 6 with stride 1
        for i in range(6, 12):
            rec.record(float(i), float(i))
        # The first 6 were folded with stride 1 (all retained); the later
        # batch thins out under stride 100. Aggregates stay exact.
        assert rec.count() == 12
        retained = rec.in_window()
        assert [0.0, 1.0, 2.0, 3.0, 4.0, 5.0] == retained[:6]
        assert len(retained) < 12
        assert rec.summary().mean == pytest.approx(sum(range(12)) / 12.0)
