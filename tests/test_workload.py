"""Unit tests for the workload package (generator, stats, client logic)."""

import random

import pytest

from repro.sim.metrics import LatencyRecorder
from repro.workload.distributions import UniformKeys, ZipfianKeys, key_name
from repro.workload.stats import WorkloadReport
from repro.workload.ycsb import YcsbWorkload


class TestDistributions:
    def test_uniform_in_range(self):
        keys = UniformKeys(100, random.Random(1))
        assert all(0 <= keys.next_rank() < 100 for _ in range(1000))

    def test_uniform_requires_records(self):
        with pytest.raises(ValueError):
            UniformKeys(0, random.Random(1))

    def test_zipfian_parameters_validated(self):
        with pytest.raises(ValueError):
            ZipfianKeys(0, random.Random(1))
        with pytest.raises(ValueError):
            ZipfianKeys(10, random.Random(1), theta=1.0)

    def test_zipfian_is_more_skewed_than_uniform(self):
        from collections import Counter

        n = 1000
        zipf = ZipfianKeys(n, random.Random(2))
        uniform = UniformKeys(n, random.Random(2))
        zipf_top = Counter(zipf.next_rank() for _ in range(5000)).most_common(1)[0][1]
        uni_top = Counter(uniform.next_rank() for _ in range(5000)).most_common(1)[0][1]
        assert zipf_top > 3 * uni_top

    def test_key_name_deterministic(self):
        assert key_name(7) == key_name(7)
        assert key_name(7) != key_name(8)
        assert key_name(7).startswith("user")


class TestYcsbWorkload:
    def test_update_only_generates_puts(self):
        workload = YcsbWorkload(random.Random(1), record_count=100, update_fraction=1.0)
        ops = [workload.next_op() for _ in range(100)]
        assert all(op[0] == "put" for op, _size in ops)

    def test_read_only_generates_gets(self):
        workload = YcsbWorkload(random.Random(1), record_count=100, update_fraction=0.0)
        ops = [workload.next_op() for _ in range(100)]
        assert all(op[0] == "get" for op, _size in ops)

    def test_value_size_respected(self):
        workload = YcsbWorkload(random.Random(1), record_count=10, value_size=500)
        (op, size) = workload.next_op()
        assert len(op[2]) == 500
        assert size > 500

    def test_mixed_fraction_roughly_respected(self):
        workload = YcsbWorkload(random.Random(3), record_count=100, update_fraction=0.5)
        kinds = [workload.next_op()[0][0] for _ in range(1000)]
        puts = kinds.count("put")
        assert 350 < puts < 650

    def test_uniform_distribution_option(self):
        workload = YcsbWorkload(
            random.Random(1), record_count=100, distribution="uniform"
        )
        workload.next_op()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            YcsbWorkload(random.Random(1), update_fraction=1.5)
        with pytest.raises(ValueError):
            YcsbWorkload(random.Random(1), value_size=0)
        with pytest.raises(ValueError):
            YcsbWorkload(random.Random(1), distribution="bimodal")

    def test_generated_counter(self):
        workload = YcsbWorkload(random.Random(1), record_count=10)
        for _ in range(5):
            workload.next_op()
        assert workload.generated == 5


class TestWorkloadReport:
    def _report(self, latencies, window=(0.0, 1000.0), errors=0, crashed=()):
        recorder = LatencyRecorder()
        for i, latency in enumerate(latencies):
            recorder.record(completed_at=float(i + 1), latency_ms=latency)
        return WorkloadReport.from_recorder(
            recorder, window[0], window[1], errors=errors, crashed_nodes=crashed
        )

    def test_throughput_from_window(self):
        report = self._report([10.0] * 500)  # 500 ops in 1 s
        assert report.throughput_ops_s == pytest.approx(500.0)

    def test_latency_metrics_exposed(self):
        report = self._report([10.0, 20.0, 30.0])
        assert report.avg_latency_ms == pytest.approx(20.0)
        assert report.p99_latency_ms == 30.0

    def test_normalization(self):
        baseline = self._report([10.0] * 100)
        faulty = self._report([20.0] * 50)
        normalized = faulty.normalized_to(baseline)
        assert normalized["throughput"] == pytest.approx(0.5)
        assert normalized["avg_latency"] == pytest.approx(2.0)
        assert normalized["p99_latency"] == pytest.approx(2.0)

    def test_crash_flag(self):
        report = self._report([1.0], crashed=["s1"])
        assert report.crashed
        assert report.crashed_nodes == ["s1"]

    def test_empty_window_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            WorkloadReport.from_recorder(recorder, 100.0, 100.0)

    def test_normalize_against_zero_baseline(self):
        baseline = self._report([])
        faulty = self._report([1.0])
        normalized = faulty.normalized_to(baseline)
        assert normalized["throughput"] == 0.0
