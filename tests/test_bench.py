"""Unit tests for the experiment harness and report formatting."""

import pytest

from repro.bench.experiments import ExperimentParams, run_rsm_experiment
from repro.bench.figure1 import shape_checks as fig1_checks
from repro.bench.figure3 import shape_checks as fig3_checks
from repro.bench.report import format_figure_table, format_normalized_table, max_drift
from repro.bench.table1 import render_table1, run_table1
from repro.bench.table1 import shape_checks as table1_checks
from repro.sim.metrics import LatencyRecorder
from repro.workload.stats import WorkloadReport


def synthetic_report(tput, avg, p99, crashed=()):
    recorder = LatencyRecorder()
    # One second of synthetic completions shaped to hit the targets.
    n = max(1, int(tput))
    for i in range(n):
        # Top 2% at the target tail so nearest-rank P99 lands inside it.
        latency = p99 if i >= 0.98 * n else avg
        recorder.record(completed_at=1.0 + i / n * 998.0, latency_ms=latency)
    report = WorkloadReport.from_recorder(recorder, 0.0, 1000.0, crashed_nodes=crashed)
    return report


class TestExperimentParams:
    def test_group_names(self):
        assert ExperimentParams(group_size=3).group() == ["s1", "s2", "s3"]

    def test_faulty_minority(self):
        assert ExperimentParams(group_size=3).n_faulty() == 1
        assert ExperimentParams(group_size=5).n_faulty() == 2
        assert ExperimentParams(group_size=7).n_faulty() == 3
        assert ExperimentParams(group_size=5, faulty_followers=1).n_faulty() == 1

    def test_smoke_profile_is_smaller(self):
        params = ExperimentParams()
        smoke = params.scaled_for_smoke()
        assert smoke.end_ms < params.end_ms
        assert smoke.n_clients < params.n_clients

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_rsm_experiment("voldemort", "none")


class TestReportFormatting:
    def _results(self):
        return {
            "sys-a": {
                "none": synthetic_report(1000, 10, 20),
                "cpu_slow": synthetic_report(700, 15, 60),
            },
            "sys-b": {
                "none": synthetic_report(2000, 5, 9),
                "cpu_slow": synthetic_report(1000, 10, 30, crashed=["s1"]),
            },
        }

    def test_normalized_table_contents(self):
        text = format_normalized_table(self._results(), "throughput", title="T")
        assert "sys-a" in text and "sys-b" in text
        assert "0.70" in text    # 700/1000
        assert "0.50*" in text   # crashed run flagged
        assert "crashed" in text

    def test_absolute_table_contents(self):
        text = format_figure_table(self._results(), "throughput", unit="ops/s")
        assert "1000.0" in text or "999" in text
        assert "ops/s" in text

    def test_missing_cells_render_dash(self):
        results = {"sys-a": {"none": synthetic_report(100, 1, 2)}}
        text = format_normalized_table(results, "throughput")
        assert "-" in text

    def test_max_drift(self):
        sweeps = {
            "none": synthetic_report(1000, 10, 20),
            "f1": synthetic_report(950, 10, 20),
            "f2": synthetic_report(1100, 10, 20),
        }
        assert max_drift(sweeps, "throughput") == pytest.approx(0.1, abs=0.02)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            format_figure_table({"a": {"none": synthetic_report(1, 1, 1)}}, "jitterbug")


class TestShapeChecks:
    def test_figure1_checks_detect_the_paper_shape(self):
        results = {
            "mongo-like": {
                "none": synthetic_report(1000, 10, 20),
                "cpu_slow": synthetic_report(700, 15, 70),
            },
            "rethink-like": {
                "none": synthetic_report(1000, 10, 20),
                "cpu_slow": synthetic_report(400, 12, 50, crashed=["s1"]),
            },
        }
        checks = fig1_checks(results)
        assert all(checks.values()), checks

    def test_figure1_checks_fail_on_flat_results(self):
        flat = synthetic_report(1000, 10, 20)
        results = {"mongo-like": {"none": flat, "cpu_slow": flat}}
        checks = fig1_checks(results)
        assert not checks["significant_throughput_loss"]

    def test_figure3_checks_band(self):
        sweeps = {
            "none": synthetic_report(5000, 8, 16),
            "cpu_slow": synthetic_report(4950, 8.1, 16.2),
        }
        checks = fig3_checks({"3 nodes": sweeps}, band=0.05)
        assert checks["3 nodes:throughput:within_band"]
        bad = {
            "none": synthetic_report(5000, 8, 16),
            "cpu_slow": synthetic_report(3000, 12, 40),
        }
        checks = fig3_checks({"3 nodes": bad}, band=0.05)
        assert not checks["3 nodes:throughput:within_band"]


class TestTable1Harness:
    def test_run_and_render(self):
        effects = run_table1()
        assert len(effects) == 6
        text = render_table1(effects)
        assert "cpu_slow" in text and "network_slow" in text
        checks = table1_checks(effects)
        assert all(checks.values()), checks

    def test_cpu_probe_magnitudes(self):
        effects = {e.fault: e for e in run_table1()}
        assert effects["cpu_slow"].slowdown == pytest.approx(20.0)
        assert effects["cpu_contention"].slowdown == pytest.approx(17.0)
        assert effects["network_slow"].faulted_ms - effects["network_slow"].healthy_ms == 400.0


class TestSmokeExperiment:
    @pytest.mark.slow
    def test_depfast_smoke_run_produces_throughput(self):
        params = ExperimentParams().scaled_for_smoke()
        report = run_rsm_experiment("depfast", "none", params)
        assert report.throughput_ops_s > 500.0
        assert report.errors == 0
        assert not report.crashed
