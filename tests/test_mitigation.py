"""MitigationController integration: demote, probation, promote, transfer."""

import pytest

from repro.cluster.cluster import Cluster
from repro.detector.mitigation import (
    MitigationConfig,
    MitigationController,
    deploy_mitigation,
)
from repro.detector.scoring import PeerHealth
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader
from repro.raft.types import Role
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def deploy_loop(seed=11, n_clients=8, config=None):
    cluster = Cluster(seed=seed)
    raft = deploy_depfast_raft(
        cluster, GROUP, config=RaftConfig(preferred_leader="s1")
    )
    detectors, controller = deploy_mitigation(cluster, raft, config=config)
    wait_for_leader(cluster, raft)
    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"), record_count=1_000, value_size=200
    )
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=n_clients)
    driver.start()
    return cluster, raft, controller


class TestController:
    @pytest.mark.slow
    def test_slow_follower_demoted_then_promoted_after_probation(self):
        config = MitigationConfig(demote_after_windows=2, probation_windows=4)
        cluster, raft, controller = deploy_loop(config=config)
        FaultInjector(cluster).inject_transient("s3", "cpu_slow", 2_000.0, 5_000.0)
        cluster.run(10_000.0)
        # The scorer's RTT hysteresis flagged s3 and the controller moved
        # it out of the quorum through the replicated conf change.
        assert controller.demotions >= 1
        demote_actions = [a for a in controller.actions if a.kind == "demote"]
        assert demote_actions and demote_actions[0].node == "s3"
        assert "s3" not in find_leader(raft).voting_members
        # The fault expired at t=7s; once the link looks healthy for the
        # full probation streak the node is promoted back to a voter.
        cluster.run(25_000.0)
        assert controller.promotions >= 1
        assert "s3" in find_leader(raft).voting_members
        assert raft["s3"].role == Role.FOLLOWER

    @pytest.mark.slow
    def test_fault_free_run_takes_no_actions(self):
        cluster, raft, controller = deploy_loop()
        cluster.run(10_000.0)
        assert controller.actions == []
        assert controller.demotions == 0
        assert controller.transfers == 0
        assert sum(len(d.suspicions) for d in controller.detectors) == 0
        assert find_leader(raft).voting_members == set(GROUP)

    @pytest.mark.slow
    def test_leadership_moves_off_suspected_leader(self):
        cluster, raft, controller = deploy_loop(n_clients=16)
        FaultInjector(cluster).inject_at("s1", "cpu_slow", 3_000.0)
        cluster.run(15_000.0)
        assert sum(len(d.suspicions) for d in controller.detectors) >= 1
        leader = find_leader(raft)
        assert leader is not None
        assert leader.id != "s1"

    @pytest.mark.slow
    def test_min_voters_floor_blocks_demotion(self):
        # With the floor at the full group size, the controller may
        # suspect all it wants but must never shrink the quorum.
        config = MitigationConfig(min_voters=3, demote_after_windows=2)
        cluster, raft, controller = deploy_loop(config=config)
        FaultInjector(cluster).inject_transient("s3", "cpu_slow", 2_000.0, 5_000.0)
        cluster.run(10_000.0)
        assert any(
            t.peer == "s3" and t.state == PeerHealth.SUSPECT
            for t in controller.scorer.transitions
        )
        assert controller.demotions == 0
        assert find_leader(raft).voting_members == set(GROUP)

    def test_double_start_rejected(self):
        cluster = Cluster(seed=1)
        raft = deploy_depfast_raft(cluster, GROUP)
        controller = MitigationController(cluster, raft)
        controller.start()
        with pytest.raises(RuntimeError):
            controller.start()
