"""Baseline RSM tests: correctness plus each system's signature pathology."""

import pytest

from repro.baselines import BASELINE_SYSTEMS, deploy_baseline
from repro.baselines.mongo_like import MongoLikeRsm
from repro.baselines.rethink_like import RethinkLikeRsm
from repro.baselines.tidb_like import TidbLikeRsm
from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.trace.verify import check_fail_slow_tolerance
from repro.workload.driver import ClosedLoopDriver, KvServiceClient
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def deploy(system_cls, seed=5):
    cluster = Cluster(seed=seed)
    nodes = deploy_baseline(cluster, system_cls, GROUP)
    return cluster, nodes


def run_ops(cluster, ops):
    node = cluster.add_client(f"cx{cluster.kernel.now:.0f}")
    node.start()
    client = KvServiceClient(node, GROUP)
    results = []

    def script():
        for op in ops:
            ok, value = yield from client.execute(op, size_bytes=64)
            results.append((ok, value))

    node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 20_000.0)
    return results


def drive(cluster, n_clients=32, until=6000.0, value_size=1000):
    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"), record_count=10_000, value_size=value_size
    )
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=n_clients)
    driver.start()
    cluster.run(until_ms=until)
    return driver


@pytest.mark.parametrize("system_cls", list(BASELINE_SYSTEMS.values()), ids=list(BASELINE_SYSTEMS))
class TestBaselineCorrectness:
    def test_put_get_roundtrip(self, system_cls):
        cluster, nodes = deploy(system_cls)
        results = run_ops(cluster, [("put", "k", "v"), ("get", "k")])
        assert results == [(True, None), (True, "v")]

    def test_replicas_converge(self, system_cls):
        cluster, nodes = deploy(system_cls)
        ops = [("put", f"k{i}", f"v{i}") for i in range(30)]
        results = run_ops(cluster, ops)
        assert all(ok for ok, _ in results)
        cluster.run(until_ms=cluster.kernel.now + 2000.0)
        checksums = {rsm.kv.checksum() for rsm in nodes.values()}
        assert len(checksums) == 1

    def test_follower_redirects_to_leader(self, system_cls):
        cluster, nodes = deploy(system_cls)
        node = cluster.add_client("c1")
        node.start()
        client = KvServiceClient(node, ["s2", "s1", "s3"])  # follower first
        results = []

        def script():
            ok, _ = yield from client.execute(("put", "a", "b"), size_bytes=64)
            results.append(ok)

        node.runtime.spawn(script())
        cluster.run(until_ms=5000.0)
        assert results == [True]
        assert client.redirects >= 1


class TestMongoLikePathology:
    @pytest.mark.slow
    def test_healthy_checkpoints_do_not_stall(self):
        cluster, nodes = deploy(MongoLikeRsm)
        drive(cluster, until=4000.0)
        leader = nodes["s1"]
        assert leader.batches_committed > 20
        assert leader.checkpoint_stalls == 0

    def test_slow_follower_causes_checkpoint_stalls(self):
        cluster, nodes = deploy(MongoLikeRsm)
        FaultInjector(cluster).inject("s3", "cpu_slow")
        drive(cluster, until=4000.0)
        leader = nodes["s1"]
        assert leader.checkpoint_stalls > 5
        assert leader.checkpoint_stall_ms > 50.0

    def test_checker_flags_the_all_follower_wait(self):
        cluster, nodes = deploy(MongoLikeRsm)
        FaultInjector(cluster).inject("s3", "cpu_slow")
        drive(cluster, until=3000.0)
        report = check_fail_slow_tolerance(cluster.tracer.records, [GROUP])
        assert not report.tolerant
        sources = {violation.source for violation in report.violations}
        assert "s3" in sources  # the checkpoint waited on the slow follower


class TestTidbLikePathology:
    @pytest.mark.slow
    def test_healthy_run_has_no_blocking_reads(self):
        cluster, nodes = deploy(TidbLikeRsm)
        drive(cluster, until=4000.0)
        assert nodes["s1"].blocking_reads == 0

    @pytest.mark.slow
    def test_slow_follower_forces_blocking_reads(self):
        cluster, nodes = deploy(TidbLikeRsm)
        FaultInjector(cluster).inject("s3", "cpu_slow")
        drive(cluster, until=6000.0)
        leader = nodes["s1"]
        assert leader.blocking_reads > 50
        assert leader.blocking_read_ms > 200.0
        # The cache is what forces the disk path.
        assert leader.log.cache.misses > 0

    @pytest.mark.slow
    def test_blocking_reads_depress_throughput(self):
        healthy_cluster, _ = deploy(TidbLikeRsm)
        healthy = drive(healthy_cluster, until=6000.0).report(2000.0, 6000.0)
        faulty_cluster, _ = deploy(TidbLikeRsm)
        FaultInjector(faulty_cluster).inject("s3", "disk_slow")
        faulty = drive(faulty_cluster, until=6000.0).report(2000.0, 6000.0)
        assert faulty.throughput_ops_s < 0.9 * healthy.throughput_ops_s


class TestRethinkLikePathology:
    @pytest.mark.slow
    def test_slow_follower_grows_unbounded_buffer(self):
        cluster, nodes = deploy(RethinkLikeRsm)
        FaultInjector(cluster).inject("s3", "cpu_slow")
        drive(cluster, until=3000.0)
        leader = nodes["s1"]
        assert leader.leader_backlog_bytes() > 5 * 1024 * 1024

    @pytest.mark.slow
    def test_cpu_slow_follower_ooms_the_leader(self):
        cluster, nodes = deploy(RethinkLikeRsm)
        FaultInjector(cluster).inject("s3", "cpu_slow")
        drive(cluster, n_clients=48, until=10_000.0)
        leader_node = nodes["s1"].node
        assert leader_node.crashed
        assert "OOM" in leader_node.crash_reason

    @pytest.mark.slow
    def test_healthy_run_does_not_crash(self):
        cluster, nodes = deploy(RethinkLikeRsm)
        drive(cluster, n_clients=48, until=10_000.0)
        assert not any(rsm.node.crashed for rsm in nodes.values())

    @pytest.mark.slow
    def test_status_sync_stalls_under_network_slow_follower(self):
        cluster, nodes = deploy(RethinkLikeRsm)
        FaultInjector(cluster).inject("s3", "network_slow")
        drive(cluster, until=4000.0)
        assert nodes["s1"].status_stalls > 3
