"""Tests for cluster deployment and Table 1 fault injection."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec
from repro.faults.catalog import TABLE1, FaultType, fault_names
from repro.faults.injector import FaultInjector
from repro.faults.jitter import BackgroundJitter


class TestCluster:
    def test_add_nodes_and_clients(self):
        cluster = Cluster(seed=0)
        cluster.add_node("s1")
        cluster.add_node("s2")
        cluster.add_client("c1")
        assert cluster.server_ids() == ["s1", "s2"]
        assert cluster.node("c1").node_id == "c1"

    def test_duplicate_ids_rejected(self):
        cluster = Cluster()
        cluster.add_node("s1")
        with pytest.raises(ValueError):
            cluster.add_node("s1")
        with pytest.raises(ValueError):
            cluster.add_client("s1")

    def test_unknown_node_lookup(self):
        with pytest.raises(KeyError):
            Cluster().node("ghost")

    def test_node_crash_is_tracked(self):
        cluster = Cluster()
        node = cluster.add_node("s1")
        node.crash(reason="test")
        assert cluster.crashed_nodes() == ["s1"]
        assert node.crash_reason == "test"
        node.crash()  # idempotent
        assert node.metrics.counter("crashes").value == 1

    def test_base_footprint_allocated(self):
        cluster = Cluster()
        node = cluster.add_node("s1", spec=NodeSpec(base_memory_fraction=0.5))
        assert node.memory.used == node.spec.memory_bytes // 2

    def test_oom_policy_crash(self):
        cluster = Cluster()
        node = cluster.add_node("s1", spec=NodeSpec(oom_policy="crash"))
        node.memory.allocate(node.spec.memory_bytes)  # blow past the limit
        cluster.run(until_ms=1.0)  # the kill is deferred one kernel step
        assert node.crashed
        assert "OOM" in node.crash_reason

    def test_oom_policy_degrade_survives(self):
        cluster = Cluster()
        node = cluster.add_node("s1", spec=NodeSpec(oom_policy="degrade"))
        node.memory.allocate(node.spec.memory_bytes)
        assert not node.crashed
        assert node.cpu.penalty > 1.0  # swap thrash applied instead

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(oom_policy="explode")
        with pytest.raises(ValueError):
            NodeSpec(base_memory_fraction=1.5)


class TestFaultCatalog:
    def test_table1_has_all_six_faults_plus_baseline(self):
        assert set(fault_names()) == {
            "cpu_slow",
            "cpu_contention",
            "disk_slow",
            "disk_contention",
            "memory_contention",
            "network_slow",
        }
        assert fault_names(include_baseline=True)[0] == "none"
        assert "none" in TABLE1

    def test_paper_parameters(self):
        assert TABLE1["cpu_slow"].param("quota") == 0.05
        assert TABLE1["cpu_contention"].param("contender_share") == 16.0
        assert TABLE1["network_slow"].param("delay_ms") == 400.0

    def test_missing_param_raises(self):
        with pytest.raises(KeyError):
            TABLE1["cpu_slow"].param("nonexistent")


class TestFaultInjector:
    def _one_node(self):
        cluster = Cluster()
        node = cluster.add_node("s1")
        return cluster, node, FaultInjector(cluster)

    def test_cpu_slow_inject_and_clear(self):
        cluster, node, injector = self._one_node()
        injector.inject("s1", "cpu_slow")
        assert node.cpu.quota == 0.05
        assert injector.fault_on("s1").fault_type == FaultType.CPU_SLOW
        injector.clear("s1")
        assert node.cpu.quota == 1.0
        assert injector.fault_on("s1") is None

    def test_each_fault_maps_to_its_resource(self):
        cluster, node, injector = self._one_node()
        injector.inject("s1", "cpu_contention")
        assert node.cpu.contender_share == 16.0
        injector.clear("s1")
        injector.inject("s1", "disk_slow")
        assert node.disk.cap_fraction == TABLE1["disk_slow"].param("cap_fraction")
        injector.clear("s1")
        injector.inject("s1", "disk_contention")
        assert node.disk.contender_load == TABLE1["disk_contention"].param("contender_load")
        injector.clear("s1")
        injector.inject("s1", "memory_contention")
        assert node.memory.limit_bytes < node.spec.memory_bytes
        injector.clear("s1")
        injector.inject("s1", "network_slow")
        assert node.nic.extra_delay_ms == 400.0
        injector.clear("s1")
        assert node.nic.extra_delay_ms == 0.0

    def test_none_fault_is_noop(self):
        cluster, node, injector = self._one_node()
        injector.inject("s1", "none")
        assert injector.fault_on("s1") is None

    def test_double_injection_rejected(self):
        cluster, node, injector = self._one_node()
        injector.inject("s1", "cpu_slow")
        with pytest.raises(RuntimeError):
            injector.inject("s1", "disk_slow")

    def test_unknown_fault_name(self):
        _, _, injector = self._one_node()
        with pytest.raises(KeyError):
            injector.inject("s1", "gamma_rays")

    def test_clear_without_fault_is_noop(self):
        _, _, injector = self._one_node()
        injector.clear("s1")

    def test_transient_fault_appears_and_clears(self):
        cluster, node, injector = self._one_node()
        injector.inject_transient("s1", "cpu_slow", at_ms=100.0, duration_ms=50.0)
        cluster.run(until_ms=120.0)
        assert node.cpu.quota == 0.05
        cluster.run(until_ms=200.0)
        assert node.cpu.quota == 1.0
        actions = [entry[3] for entry in injector.history]
        assert actions == ["inject", "clear"]

    def test_transient_needs_positive_duration(self):
        _, _, injector = self._one_node()
        with pytest.raises(ValueError):
            injector.inject_transient("s1", "cpu_slow", at_ms=0.0, duration_ms=0.0)

    def test_memory_contention_creates_pressure(self):
        cluster, node, injector = self._one_node()
        # Base footprint is 50%; cap at 55% -> pressure ~0.91 > threshold.
        injector.inject("s1", "memory_contention")
        assert node.memory.pressure() > 0.85
        assert node.memory.swap_penalty() > 1.0
        assert not node.crashed  # contention degrades, does not OOM


class TestBackgroundJitter:
    def test_dips_and_recovers(self):
        cluster = Cluster(seed=3)
        node = cluster.add_node("s1")
        jitter = BackgroundJitter(
            cluster,
            ["s1"],
            cluster.rng.stream("jitter"),
            mean_interval_ms=50.0,
            dip_factor=0.2,
            mean_duration_ms=10.0,
        )
        jitter.start()
        cluster.run(until_ms=2000.0)
        jitter.stop()
        assert jitter.dips_injected > 5
        cluster.run(until_ms=4000.0)
        assert node.cpu.jitter_factor == 1.0  # recovered after stop

    def test_requires_targets(self):
        cluster = Cluster()
        with pytest.raises(ValueError):
            BackgroundJitter(cluster, [], cluster.rng.stream("j"))

    def test_dip_factor_validated(self):
        cluster = Cluster()
        cluster.add_node("s1")
        with pytest.raises(ValueError):
            BackgroundJitter(cluster, ["s1"], cluster.rng.stream("j"), dip_factor=0.0)
