"""Tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flood"])

    def test_experiment_requires_known_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--system", "voldemort"])

    def test_smoke_flags_parse(self):
        args = build_parser().parse_args(["figure1", "--smoke"])
        assert args.smoke
        args = build_parser().parse_args(["figure3"])
        assert not args.smoke


class TestCommands:
    def test_table1_prints_catalog(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "cpu_slow" in out
        assert "20.0x" in out

    @pytest.mark.slow
    def test_experiment_smoke_run(self, capsys):
        code = main(
            ["experiment", "--system", "depfast", "--fault", "network_slow", "--smoke"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ops/s" in out
        assert "depfast under network_slow" in out
