"""Mutually-recursive helpers: the shape fixpoint must terminate, not
chase ping -> pong -> ping forever."""

from repro.events.basic import Event


def ping(n):
    if n <= 0:
        return Event(name="ping", source="s2")
    return pong(n - 1)


def pong(n):
    if n <= 0:
        return Event(name="pong", source="s3")
    return ping(n - 1)
