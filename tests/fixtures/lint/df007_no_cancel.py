"""DF007: a hedged call that opts out of cancelling its losing copies."""

from repro.hedging import HedgedCall


class NoCancelHedger:
    def __init__(self, runtime):
        self.rt = runtime
        self.ep = runtime.endpoint

    def race(self, peers):
        call = HedgedCall(  # line 12: DF007
            self.ep, peers, "read", quorum=1, cancel_losers=False
        )
        yield call.wait(timeout_ms=50.0)
