"""DF008: a wall-clock read inside sim-driven code."""

import time


class ClockLeaker:
    def __init__(self, runtime):
        self.rt = runtime

    def handle(self, op):
        started = time.time()  # line 11: DF008 (host clock in sim code)
        yield self.rt.sleep(1.0)
        return (op, started)
