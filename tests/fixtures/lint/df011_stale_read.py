"""DF011: a mutable shared field snapshotted before a yield and relied on
after it with no revalidation."""


class StaleReader:
    def __init__(self, node_id, group, runtime):
        if node_id not in group:
            raise ValueError(node_id)
        self.id = node_id
        self.term = 0
        self.rt = runtime

    def campaign(self):
        self.term += 1
        term = self.term  # line 15: DF011 (stale after the sleep)
        yield self.rt.sleep(5.0)
        return ("leader", term)

    def campaign_checked(self):
        self.term += 1
        term = self.term  # clean: revalidated against self.term below
        yield self.rt.sleep(5.0)
        if self.term != term:
            return ("lost", self.term)
        return ("leader", term)
