"""DF001: a basic-Event inter-node wait in replica-group code."""

from repro.events.basic import Event


class SoloWaitReplica:
    def __init__(self, node_id, group):
        if node_id not in group:
            raise ValueError(node_id)
        self.id = node_id
        self.group = group

    def replicate(self, op):
        ack = Event(name="ack", source="s2")
        self.send(op)
        result = yield ack.wait(timeout_ms=50.0)  # line 16: DF001
        return result

    def send(self, op):
        pass
