"""DF005: a quorum with k == n — every member on the critical path."""

from repro.events.compound import QuorumEvent


class AllAckBroadcaster:
    def __init__(self, runtime):
        self.rt = runtime

    def broadcast(self, acks):
        all_acks = QuorumEvent(3, n_total=3, name="all")  # line 11: DF005
        for ack in acks:
            all_acks.add(ack)
        yield all_acks.wait(timeout_ms=100.0)
