"""DF004 interprocedural: a helper chain returns a freshly-constructed
event nobody consumes — dropping the call orphans it two hops away."""

from repro.events.basic import Event


class TwoHopLeaker:
    def __init__(self, runtime):
        self.rt = runtime

    def handle(self, op):
        self._announce(op)  # line 12: DF004 (fresh event dropped here)
        yield self.rt.sleep(1.0)
        return op

    def _announce(self, op):
        return self._make_ack(op)

    def _make_ack(self, op):
        return Event(name="ack", source="s2")
