"""DF004 false-positive guard: events a callee demonstrably consumes
(triggers, or hands to a consuming helper) are not leaks — zero findings."""

from repro.events.basic import Event


class ConsumingCallee:
    def __init__(self, runtime):
        self.rt = runtime
        self.pending = {}

    def handle(self, op):
        self._tick()  # clean: _tick triggers the event before returning it
        self._announce(op)  # clean: the chain stashes the event for waiters
        yield self.rt.sleep(1.0)
        return op

    def _tick(self):
        done = Event(name="tick")
        done.trigger(None)
        return done

    def _announce(self, op):
        ack = self._make_ack(op)
        self._stash(op, ack)
        return ack

    def _make_ack(self, op):
        return Event(name="ack", source="s2")

    def _stash(self, op, ack):
        self.pending[op] = ack
