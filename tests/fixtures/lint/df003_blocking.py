"""DF003: a blocking OS-thread call inside a coroutine body."""

import time


class CheckpointWriter:
    def __init__(self, runtime):
        self.rt = runtime

    def checkpoint(self):
        time.sleep(0.01)  # line 11: DF003
        yield self.rt.sleep(5.0)
