"""DF004: an event constructed but never triggered, waited on or stored."""

from repro.events.basic import Event


class ForgetfulHandler:
    def __init__(self, runtime):
        self.rt = runtime

    def handle(self, op):
        done = Event(name="done", source="s2")  # line 11: DF004 (orphaned)
        yield self.rt.sleep(1.0)
        return op
