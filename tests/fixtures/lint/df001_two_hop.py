"""DF001/DF002 interprocedural: the waited event is built two call hops
away — the wait site itself never names a constructor."""

from repro.events.basic import Event


class TwoHopSolo:
    def __init__(self, node_id, group):
        if node_id not in group:
            raise ValueError(node_id)
        self.id = node_id
        self.group = group

    def replicate(self, op):
        ack = self._remote_ack(op)
        result = yield ack.wait()  # line 16: DF001 + DF002 (two hops away)
        return result

    def _remote_ack(self, op):
        return self._build(op)

    def _build(self, op):
        return Event(name="ack", source="s2")
