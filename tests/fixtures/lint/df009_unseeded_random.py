"""DF009: drawing from the shared module-level random generator."""

import random


def jittered_delay(base_ms):
    # An explicitly-seeded stream is fine (this is how repro.sim.rng
    # builds its registry):
    rng = random.Random(42)
    seeded = rng.random()
    return base_ms * (1.0 + random.random()) + seeded  # line 11: DF009
