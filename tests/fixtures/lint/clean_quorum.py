"""The §3.1 ideal: quorum-only waits with timeouts — zero findings."""

from repro.events.compound import QuorumEvent


class CleanReplica:
    def __init__(self, node_id, group, endpoint):
        if node_id not in group:
            raise ValueError(node_id)
        self.id = node_id
        self.group = group
        self.peers = [peer for peer in group if peer != node_id]
        self.ep = endpoint

    def replicate(self, op):
        quorum = QuorumEvent(2, n_total=3, name="repl")
        for peer in self.peers:
            quorum.add(self.ep.call(peer, "append", {"op": op}, size_bytes=128))
        result = yield quorum.wait(timeout_ms=100.0)
        return result
