"""DF006: a loop with no wait point whose condition the body cannot change."""


class BusyPoller:
    def __init__(self, runtime):
        self.rt = runtime
        self.draining = True

    def poll(self):
        while self.draining:  # line 10: DF006 (busy-wait, no yield)
            polled = 1
        yield self.rt.sleep(polled)
