"""DF002: an inter-node wait with no timeout."""

from repro.events.basic import RpcEvent
from repro.events.compound import QuorumEvent


class UnboundedReplica:
    def __init__(self, node_id, group):
        self.id = node_id
        self.peers = [peer for peer in group if peer != node_id]

    def replicate(self, op):
        quorum = QuorumEvent(2, n_total=3, name="repl")
        for peer in self.peers:
            quorum.add(RpcEvent("append", to_node=peer))
        result = yield quorum.wait()  # line 16: DF002 (no timeout_ms)
        return result
