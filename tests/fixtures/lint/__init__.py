"""Seeded anti-pattern fixtures for depfast-lint, one file per rule.

These modules are *scanned*, never imported: each demonstrates exactly one
rule firing (plus ``clean_quorum.py``, which must produce zero findings).
"""
