"""DF010: iterating a set and sending per element — event order then
depends on the hash seed, not the program."""


class Broadcaster:
    def __init__(self, endpoint, members):
        self.ep = endpoint
        self.members = set(members)

    def broadcast(self, op):
        for peer in self.members:  # line 11: DF010 (unordered send loop)
            self.ep.send(peer, "op", {"op": op})

    def broadcast_sorted(self, op):
        for peer in sorted(self.members):  # clean: order pinned
            self.ep.send(peer, "op", {"op": op})
