"""Edge-case tests filling coverage gaps across modules."""

import pytest

from repro.cluster.cluster import CLIENT_SPEC, Cluster
from repro.events.base import Event
from repro.events.basic import ValueEvent
from repro.net.message import Message
from repro.net.rpc import RpcError, _payload_size
from repro.runtime.runtime import Runtime
from repro.sim.kernel import Kernel
from repro.trace.spg import build_spg
from repro.trace.tracepoints import WaitRecord


class TestRpcLayerEdges:
    def test_payload_size_estimates(self):
        assert _payload_size(b"12345") == 5
        assert _payload_size("abc") == 3
        assert _payload_size({"k": 1}) == 64
        class Sized:
            size_bytes = 1234
        assert _payload_size(Sized()) == 1234

    def test_endpoint_double_start_rejected(self):
        cluster = Cluster()
        node = cluster.add_node("s1")
        node.start()
        with pytest.raises(RpcError):
            node.start()

    def test_parse_cost_per_kb_slows_big_messages(self):
        cluster = Cluster()
        server = cluster.add_node("s1")
        client = cluster.add_node("s2")

        def handler(payload, src, _rt=server.runtime):
            yield _rt.compute(0.001)
            return "ok"

        server.endpoint.register("m", handler)
        server.start()
        client.start()
        latencies = {}
        for label, size in (("small", 10), ("big", 500_000)):
            rpc = client.endpoint.call("s1", "m", None, size_bytes=size)
            done = []
            rpc.subscribe(lambda ev, _l=label: done.append(ev.latency_ms()))
            cluster.run(until_ms=cluster.kernel.now + 5000.0)
            latencies[label] = done[0]
        # 500 KB at 0.02 CPU-ms/KB = ~10 CPU-ms of deserialization plus
        # transfer time: clearly slower than the small message.
        assert latencies["big"] > latencies["small"] + 4.0


class TestRuntimeEdges:
    def test_compute_without_cpu_resource_raises(self):
        runtime = Runtime(Kernel(), node="n")
        with pytest.raises(RuntimeError):
            runtime.compute(1.0)

    def test_yielding_event_directly_is_shorthand_for_wait(self):
        kernel = Kernel()
        from repro.sim.resources import CpuResource

        runtime = Runtime(kernel, node="n", cpu=CpuResource(kernel))
        ev = ValueEvent()
        kernel.schedule(5.0, ev.set, "x")
        got = []

        def task():
            result = yield ev  # no .wait(): Event is accepted directly
            got.append((result.ready, kernel.now))

        runtime.spawn(task())
        kernel.run_until_idle()
        assert got == [(True, 5.0)]


class TestClusterEdges:
    def test_client_spec_is_light(self):
        assert CLIENT_SPEC.base_memory_fraction == 0.0
        assert CLIENT_SPEC.oom_policy == "degrade"
        cluster = Cluster()
        client = cluster.add_client("c1")
        assert client.memory.used == 0

    def test_network_send_between_unattached_rejected(self):
        cluster = Cluster()
        cluster.add_node("s1")
        with pytest.raises(ValueError):
            cluster.network.send(Message("s1", "nobody", "x"))


class TestSpgLabelDominance:
    def _record(self, kind, k, n, name="e"):
        return WaitRecord(
            coro_name="c",
            node="s1",
            event_kind=kind,
            event_name=name,
            edges=[("s2", k, n)],
            started_at=0.0,
            ended_at=1.0,
            timed_out=False,
        )

    def test_most_frequent_label_wins(self):
        records = [self._record("quorum", 1, 2)] * 2 + [self._record("quorum", 2, 3)] * 9
        graph = build_spg(records)
        assert graph.edges[("s1", "s2")]["label"] == "2/3"

    def test_red_persists_once_seen(self):
        records = [self._record("rpc", 1, 1)] + [self._record("quorum", 2, 3)] * 50
        graph = build_spg(records)
        assert graph.edges[("s1", "s2")]["color"] == "red"


class TestEventMetadataEdges:
    def test_or_event_wait_edges_discount(self):
        from repro.events.compound import OrEvent

        a = Event(source="s2")
        b = Event(source="s3")
        either = OrEvent(a, b)
        edges = either.wait_edges()
        # Each branch is 1-of-2 through the Or.
        assert ("s2", 1, 2) in edges
        assert ("s3", 1, 2) in edges

    def test_timed_out_flag_survives_on_compound(self):
        from repro.events.compound import OrEvent

        kernel = Kernel()
        from repro.sim.resources import CpuResource

        runtime = Runtime(kernel, node="n", cpu=CpuResource(kernel))
        either = OrEvent(Event(), Event(), name="fastpath")
        seen = []

        def task():
            result = yield either.wait(timeout_ms=10.0)
            seen.append((result.timed_out, either.timed_out))

        runtime.spawn(task())
        kernel.run_until_idle()
        # Mirrors the paper's `fastpath.Timeout()` accessor.
        assert seen == [(True, True)]
