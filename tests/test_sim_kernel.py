"""Unit tests for the DES kernel: ordering, cancellation, time semantics."""

import pytest

from repro.sim.kernel import Kernel, SimulationError


def test_time_starts_at_zero():
    assert Kernel().now == 0.0


def test_schedule_and_run_advances_clock():
    kernel = Kernel()
    fired = []
    kernel.schedule(10.0, lambda: fired.append(kernel.now))
    kernel.run(until_ms=100.0)
    assert fired == [10.0]
    assert kernel.now == 100.0


def test_callbacks_fire_in_time_order():
    kernel = Kernel()
    order = []
    kernel.schedule(30.0, order.append, "c")
    kernel.schedule(10.0, order.append, "a")
    kernel.schedule(20.0, order.append, "b")
    kernel.run_until_idle()
    assert order == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    kernel = Kernel()
    order = []
    for tag in ("first", "second", "third"):
        kernel.schedule(5.0, order.append, tag)
    kernel.run_until_idle()
    assert order == ["first", "second", "third"]


def test_cancelled_callback_does_not_fire():
    kernel = Kernel()
    fired = []
    call = kernel.schedule(5.0, fired.append, "x")
    call.cancel()
    kernel.run_until_idle()
    assert fired == []


def test_cancel_is_idempotent():
    kernel = Kernel()
    call = kernel.schedule(5.0, lambda: None)
    call.cancel()
    call.cancel()
    kernel.run_until_idle()


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Kernel().schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    kernel = Kernel()
    kernel.schedule(10.0, lambda: None)
    kernel.run(until_ms=20.0)
    with pytest.raises(SimulationError):
        kernel.schedule_at(5.0, lambda: None)


def test_call_soon_runs_at_current_time():
    kernel = Kernel()
    seen = []
    kernel.schedule(7.0, lambda: kernel.call_soon(seen.append, kernel.now))
    kernel.run_until_idle()
    assert seen == [7.0]


def test_nested_scheduling_from_callback():
    kernel = Kernel()
    times = []

    def first():
        times.append(kernel.now)
        kernel.schedule(5.0, second)

    def second():
        times.append(kernel.now)

    kernel.schedule(1.0, first)
    kernel.run_until_idle()
    assert times == [1.0, 6.0]


def test_run_stops_at_boundary_leaving_future_events():
    kernel = Kernel()
    fired = []
    kernel.schedule(10.0, fired.append, "early")
    kernel.schedule(50.0, fired.append, "late")
    kernel.run(until_ms=20.0)
    assert fired == ["early"]
    assert kernel.now == 20.0
    kernel.run(until_ms=60.0)
    assert fired == ["early", "late"]


def test_run_backwards_rejected():
    kernel = Kernel()
    kernel.run(until_ms=10.0)
    with pytest.raises(SimulationError):
        kernel.run(until_ms=5.0)


def test_stop_interrupts_run():
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, lambda: (fired.append("a"), kernel.stop()))
    kernel.schedule(2.0, fired.append, "b")
    kernel.run(until_ms=100.0)
    assert fired == ["a"]
    assert kernel.now == 1.0  # clock not forced forward after stop
    kernel.run(until_ms=100.0)
    assert "b" in fired


def test_pending_excludes_cancelled():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    call = kernel.schedule(2.0, lambda: None)
    call.cancel()
    assert kernel.pending() == 1


def test_next_event_time_skips_cancelled():
    kernel = Kernel()
    call = kernel.schedule(1.0, lambda: None)
    kernel.schedule(3.0, lambda: None)
    call.cancel()
    assert kernel.next_event_time() == 3.0


def test_next_event_time_none_when_idle():
    assert Kernel().next_event_time() is None


def test_run_until_idle_safety_bound():
    kernel = Kernel()

    def reschedule():
        kernel.schedule(1000.0, reschedule)

    kernel.schedule(0.0, reschedule)
    with pytest.raises(SimulationError):
        kernel.run_until_idle(max_time_ms=10_000.0)
