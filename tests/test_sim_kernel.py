"""Unit tests for the DES kernel: ordering, cancellation, time semantics."""

import pytest

from repro.sim.kernel import Kernel, SimulationError


def test_time_starts_at_zero():
    assert Kernel().now == 0.0


def test_schedule_and_run_advances_clock():
    kernel = Kernel()
    fired = []
    kernel.schedule(10.0, lambda: fired.append(kernel.now))
    kernel.run(until_ms=100.0)
    assert fired == [10.0]
    assert kernel.now == 100.0


def test_callbacks_fire_in_time_order():
    kernel = Kernel()
    order = []
    kernel.schedule(30.0, order.append, "c")
    kernel.schedule(10.0, order.append, "a")
    kernel.schedule(20.0, order.append, "b")
    kernel.run_until_idle()
    assert order == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    kernel = Kernel()
    order = []
    for tag in ("first", "second", "third"):
        kernel.schedule(5.0, order.append, tag)
    kernel.run_until_idle()
    assert order == ["first", "second", "third"]


def test_cancelled_callback_does_not_fire():
    kernel = Kernel()
    fired = []
    call = kernel.schedule(5.0, fired.append, "x")
    call.cancel()
    kernel.run_until_idle()
    assert fired == []


def test_cancel_is_idempotent():
    kernel = Kernel()
    call = kernel.schedule(5.0, lambda: None)
    call.cancel()
    call.cancel()
    kernel.run_until_idle()


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Kernel().schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    kernel = Kernel()
    kernel.schedule(10.0, lambda: None)
    kernel.run(until_ms=20.0)
    with pytest.raises(SimulationError):
        kernel.schedule_at(5.0, lambda: None)


def test_call_soon_runs_at_current_time():
    kernel = Kernel()
    seen = []
    kernel.schedule(7.0, lambda: kernel.call_soon(seen.append, kernel.now))
    kernel.run_until_idle()
    assert seen == [7.0]


def test_nested_scheduling_from_callback():
    kernel = Kernel()
    times = []

    def first():
        times.append(kernel.now)
        kernel.schedule(5.0, second)

    def second():
        times.append(kernel.now)

    kernel.schedule(1.0, first)
    kernel.run_until_idle()
    assert times == [1.0, 6.0]


def test_run_stops_at_boundary_leaving_future_events():
    kernel = Kernel()
    fired = []
    kernel.schedule(10.0, fired.append, "early")
    kernel.schedule(50.0, fired.append, "late")
    kernel.run(until_ms=20.0)
    assert fired == ["early"]
    assert kernel.now == 20.0
    kernel.run(until_ms=60.0)
    assert fired == ["early", "late"]


def test_run_backwards_rejected():
    kernel = Kernel()
    kernel.run(until_ms=10.0)
    with pytest.raises(SimulationError):
        kernel.run(until_ms=5.0)


def test_stop_interrupts_run():
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, lambda: (fired.append("a"), kernel.stop()))
    kernel.schedule(2.0, fired.append, "b")
    kernel.run(until_ms=100.0)
    assert fired == ["a"]
    assert kernel.now == 1.0  # clock not forced forward after stop
    kernel.run(until_ms=100.0)
    assert "b" in fired


def test_pending_excludes_cancelled():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    call = kernel.schedule(2.0, lambda: None)
    call.cancel()
    assert kernel.pending() == 1


def test_next_event_time_skips_cancelled():
    kernel = Kernel()
    call = kernel.schedule(1.0, lambda: None)
    kernel.schedule(3.0, lambda: None)
    call.cancel()
    assert kernel.next_event_time() == 3.0


def test_next_event_time_none_when_idle():
    assert Kernel().next_event_time() is None


def test_cancelled_head_beyond_safety_bound_is_garbage_not_work():
    """Only *live* events count toward the run_until_idle safety bound.

    Regression guard for the old duplicated lazy-pop logic in run() /
    run_until_idle(): a cancelled far-future timer (an expired wait
    timeout) must not trip the bound or advance the clock.
    """
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, fired.append, "near")
    far = kernel.schedule(5_000_000.0, fired.append, "far")
    far.cancel()
    kernel.run_until_idle(max_time_ms=10_000.0)
    assert fired == ["near"]
    assert kernel.now == 1.0  # the cancelled far event never advanced time


def test_callback_cancels_same_timestamp_event_behind_it():
    """A batch event can cancel a same-timestamp event queued behind it."""
    kernel = Kernel()
    fired = []
    victim = kernel.schedule(5.0, fired.append, "victim")
    # victim is cancelled before the run; straggler is cancelled from
    # *inside* the 5.0 batch by an event ahead of it (the lazy-pop path).
    kernel.schedule_at(5.0, lambda: straggler.cancel())
    straggler = kernel.schedule_at(5.0, fired.append, "straggler")
    victim.cancel()
    kernel.schedule_at(5.0, fired.append, "kept")
    kernel.run_until_idle()
    assert fired == ["kept"]


def test_run_is_not_reentrant():
    """Calling run()/run_until_idle() from a callback is kernel misuse.

    The old loop silently allowed it and corrupted the _running flag and
    the outer run's until_ms boundary; now it raises.
    """
    kernel = Kernel()
    errors = []

    def naughty():
        try:
            kernel.run_until_idle()
        except SimulationError as exc:
            errors.append(str(exc))

    kernel.schedule(1.0, naughty)
    kernel.run(until_ms=10.0)
    assert len(errors) == 1 and "not reentrant" in errors[0]


def test_stop_mid_batch_preserves_same_time_remainder():
    """stop() between two same-timestamp events leaves the rest queued."""
    kernel = Kernel()
    fired = []
    kernel.schedule(5.0, lambda: (fired.append("a"), kernel.stop()))
    kernel.schedule(5.0, fired.append, "b")
    kernel.schedule(5.0, fired.append, "c")
    kernel.run(until_ms=100.0)
    assert fired == ["a"]
    assert kernel.pending() == 2
    kernel.run(until_ms=100.0)
    assert fired == ["a", "b", "c"]


def test_compaction_preserves_order_and_counts():
    """Cancelling most of a large queue compacts it without reordering."""
    kernel = Kernel()
    fired = []
    calls = [
        kernel.schedule(float(i % 13), fired.append, i) for i in range(500)
    ]
    for i, call in enumerate(calls):
        if i % 10 != 0:
            call.cancel()
    survivors = [i for i in range(500) if i % 10 == 0]
    assert kernel.pending() == len(survivors)
    kernel.run_until_idle()
    expected = sorted(survivors, key=lambda i: (i % 13, i))
    assert fired == expected


def test_cancel_during_run_defers_compaction_safely():
    """Mass-cancelling from inside a callback must not corrupt the queue."""
    kernel = Kernel()
    fired = []
    victims = [kernel.schedule(50.0, fired.append, f"v{i}") for i in range(200)]
    kernel.schedule(10.0, lambda: [v.cancel() for v in victims])
    kernel.schedule(60.0, fired.append, "end")
    kernel.run_until_idle()
    assert fired == ["end"]
    assert kernel.pending() == 0


def test_events_executed_counts_only_live_events():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    dead = kernel.schedule(2.0, lambda: None)
    dead.cancel()
    kernel.schedule(3.0, lambda: None)
    kernel.run_until_idle()
    assert kernel.events_executed == 2


def test_profile_counts_by_module():
    kernel = Kernel()
    kernel.enable_profile()
    kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    kernel.run_until_idle()
    counts = kernel.profile_counts()
    assert sum(counts.values()) == 2
    assert all(isinstance(module, str) for module in counts)


def test_cancel_after_execution_is_a_noop():
    """Cancelling an already-executed call must not corrupt live counts."""
    kernel = Kernel()
    call = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    kernel.run(until_ms=1.5)
    call.cancel()  # already ran
    call.cancel()
    assert kernel.pending() == 1
    kernel.run_until_idle()  # would exit early if _live went negative
    assert kernel.events_executed == 2


def test_callback_cancelling_its_own_handle_is_a_noop():
    kernel = Kernel()
    holder = {}
    holder["call"] = kernel.schedule(1.0, lambda: holder["call"].cancel())
    kernel.schedule(2.0, lambda: None)
    kernel.run_until_idle()
    assert kernel.pending() == 0
    assert kernel.events_executed == 2


def test_run_until_idle_safety_bound():
    kernel = Kernel()

    def reschedule():
        kernel.schedule(1000.0, reschedule)

    kernel.schedule(0.0, reschedule)
    with pytest.raises(SimulationError):
        kernel.run_until_idle(max_time_ms=10_000.0)
