"""Tests for the §5 fail-slow leader detector and re-election mitigation."""

import pytest

from repro.cluster.cluster import Cluster
from repro.detector import DetectorConfig, LeaderSlownessDetector
from repro.detector.leader_detector import attach_detectors
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def deploy_with_detectors(seed=19, detector_config=None):
    cluster = Cluster(seed=seed)
    raft = deploy_depfast_raft(
        cluster, GROUP, config=RaftConfig(preferred_leader="s1")
    )
    detectors = attach_detectors(raft, config=detector_config)
    wait_for_leader(cluster, raft)
    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"), record_count=10_000, value_size=1000
    )
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=32)
    driver.start()
    return cluster, raft, detectors, driver


class TestDetection:
    @pytest.mark.slow
    def test_healthy_leader_never_suspected(self):
        cluster, raft, detectors, driver = deploy_with_detectors()
        cluster.run(until_ms=8000.0)
        assert all(detector.suspected is None for detector in detectors)
        assert find_leader(raft).id == "s1"

    @pytest.mark.slow
    def test_fail_slow_leader_gets_suspected_and_demoted(self):
        cluster, raft, detectors, driver = deploy_with_detectors()
        cluster.run(until_ms=3000.0)  # healthy baseline for the detectors
        FaultInjector(cluster).inject("s1", "cpu_slow")
        cluster.run(until_ms=20_000.0)
        suspects = [d.suspected for d in detectors if d.suspected]
        assert "s1" in suspects
        new_leader = find_leader(raft)
        assert new_leader is not None
        assert new_leader.id != "s1"

    @pytest.mark.slow
    def test_throughput_recovers_after_mitigation(self):
        cluster, raft, detectors, driver = deploy_with_detectors()
        cluster.run(until_ms=3000.0)
        healthy = driver.report(1000.0, 3000.0)
        FaultInjector(cluster).inject("s1", "cpu_slow")
        cluster.run(until_ms=12_000.0)  # detect + re-elect + settle
        cluster.run(until_ms=18_000.0)
        recovered = driver.report(12_000.0, 18_000.0)
        # The fail-slow node is now a follower, which DepFastRaft
        # tolerates: throughput returns to the same order of magnitude.
        assert recovered.throughput_ops_s > 0.5 * healthy.throughput_ops_s

    @pytest.mark.slow
    def test_without_detector_fail_slow_leader_stays(self):
        cluster = Cluster(seed=19)
        raft = deploy_depfast_raft(
            cluster, GROUP, config=RaftConfig(preferred_leader="s1")
        )
        wait_for_leader(cluster, raft)
        workload = YcsbWorkload(
            cluster.rng.stream("ycsb"), record_count=10_000, value_size=1000
        )
        driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=32)
        driver.start()
        cluster.run(until_ms=3000.0)
        FaultInjector(cluster).inject("s1", "cpu_slow")
        cluster.run(until_ms=15_000.0)
        # Heartbeats still flow, so vanilla Raft never re-elects: the
        # fail-slow leader keeps the crown and performance stays degraded.
        assert find_leader(raft).id == "s1"
        degraded = driver.report(8000.0, 15_000.0)
        healthy = driver.report(1000.0, 3000.0)
        assert degraded.throughput_ops_s < 0.6 * healthy.throughput_ops_s


class TestDetectorUnit:
    def test_double_start_rejected(self):
        cluster = Cluster(seed=1)
        raft = deploy_depfast_raft(cluster, GROUP)
        detector = LeaderSlownessDetector(raft["s2"])
        detector.start()
        with pytest.raises(RuntimeError):
            detector.start()

    def test_config_defaults_sane(self):
        config = DetectorConfig()
        assert config.strikes_to_suspect >= 1
        assert 0 < config.commit_rate_fraction < 1
