"""Tests for the §5 fail-slow leader detector and re-election mitigation."""

import pytest

from repro.cluster.cluster import Cluster
from repro.detector import DetectorConfig, LeaderSlownessDetector
from repro.detector.leader_detector import attach_detectors
from repro.detector.peer_monitor import PeerLatencyProfile
from repro.faults.chaos import Nemesis
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader
from repro.raft.types import Role
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def deploy_with_detectors(seed=19, detector_config=None):
    cluster = Cluster(seed=seed)
    raft = deploy_depfast_raft(
        cluster, GROUP, config=RaftConfig(preferred_leader="s1")
    )
    detectors = attach_detectors(raft, config=detector_config)
    wait_for_leader(cluster, raft)
    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"), record_count=10_000, value_size=1000
    )
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=32)
    driver.start()
    return cluster, raft, detectors, driver


class TestDetection:
    @pytest.mark.slow
    def test_healthy_leader_never_suspected(self):
        cluster, raft, detectors, driver = deploy_with_detectors()
        cluster.run(until_ms=8000.0)
        assert all(detector.suspected is None for detector in detectors)
        assert find_leader(raft).id == "s1"

    @pytest.mark.slow
    def test_fail_slow_leader_gets_suspected_and_demoted(self):
        cluster, raft, detectors, driver = deploy_with_detectors()
        cluster.run(until_ms=3000.0)  # healthy baseline for the detectors
        FaultInjector(cluster).inject("s1", "cpu_slow")
        cluster.run(until_ms=20_000.0)
        suspects = [d.suspected for d in detectors if d.suspected]
        assert "s1" in suspects
        new_leader = find_leader(raft)
        assert new_leader is not None
        assert new_leader.id != "s1"

    @pytest.mark.slow
    def test_throughput_recovers_after_mitigation(self):
        cluster, raft, detectors, driver = deploy_with_detectors()
        cluster.run(until_ms=3000.0)
        healthy = driver.report(1000.0, 3000.0)
        FaultInjector(cluster).inject("s1", "cpu_slow")
        cluster.run(until_ms=12_000.0)  # detect + re-elect + settle
        cluster.run(until_ms=18_000.0)
        recovered = driver.report(12_000.0, 18_000.0)
        # The fail-slow node is now a follower, which DepFastRaft
        # tolerates: throughput returns to the same order of magnitude.
        assert recovered.throughput_ops_s > 0.5 * healthy.throughput_ops_s

    @pytest.mark.slow
    def test_without_detector_fail_slow_leader_stays(self):
        cluster = Cluster(seed=19)
        raft = deploy_depfast_raft(
            cluster, GROUP, config=RaftConfig(preferred_leader="s1")
        )
        wait_for_leader(cluster, raft)
        workload = YcsbWorkload(
            cluster.rng.stream("ycsb"), record_count=10_000, value_size=1000
        )
        driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=32)
        driver.start()
        cluster.run(until_ms=3000.0)
        FaultInjector(cluster).inject("s1", "cpu_slow")
        cluster.run(until_ms=15_000.0)
        # Heartbeats still flow, so vanilla Raft never re-elects: the
        # fail-slow leader keeps the crown and performance stays degraded.
        assert find_leader(raft).id == "s1"
        degraded = driver.report(8000.0, 15_000.0)
        healthy = driver.report(1000.0, 3000.0)
        assert degraded.throughput_ops_s < 0.6 * healthy.throughput_ops_s


class FakeRaft:
    """Duck-typed RaftNode surface that observe_window consumes."""

    def __init__(self):
        self.id = "s2"
        self.commit_index = 0
        self.role = Role.FOLLOWER
        self.leader_hint = "s1"
        self.last_leader_pending = 0
        self.peak_leader_pending = 0
        self.suspected_leader = None
        self.term = 3


class TestObserveWindow:
    """Drive windows by hand against a fake raft (regression surface)."""

    WINDOW = 500.0

    def setup_method(self):
        self.raft = FakeRaft()
        self.detector = LeaderSlownessDetector(self.raft)
        self.now = 0.0

    def window(self, delta=0, pending=0, role=Role.FOLLOWER, leader="s1"):
        self.raft.role = role
        self.raft.leader_hint = leader
        self.raft.commit_index += delta
        self.raft.peak_leader_pending = pending
        self.raft.last_leader_pending = 0
        self.now += self.WINDOW
        self.detector.observe_window(self.now)

    def test_skipped_windows_do_not_inflate_best_rate(self):
        # Healthy baseline: 100 commits per window.
        for _ in range(3):
            self.window(delta=100)
        # The node leads for a while: windows are skipped, but commits
        # keep accumulating. The buggy detector left the baseline stale
        # here, so the first follower window spanned all of them.
        for _ in range(4):
            self.window(delta=400, role=Role.LEADER)
        # Back to following: one re-arm window, then the same healthy
        # rate with a busy-but-fine leader (backed up AND committing).
        self.window(delta=100)
        for _ in range(5):
            self.window(delta=100, pending=20)
        # A stale baseline would read the post-skip delta as a 16x best
        # rate, making every healthy window look like a crawl.
        assert self.detector._best_commit_rate == pytest.approx(100 / self.WINDOW)
        assert self.detector.suspicions == []
        assert self.raft.suspected_leader is None

    def crawl_until_suspected(self, leader):
        for _ in range(10):
            self.window(delta=2, pending=20, leader=leader)
            if self.raft.suspected_leader == leader:
                return
        raise AssertionError(f"{leader} never suspected")

    def test_resuspects_new_leader_after_flap(self):
        for _ in range(3):
            self.window(delta=100)
        self.crawl_until_suspected("s1")
        assert [s.leader for s in self.detector.suspicions] == ["s1"]
        # An election replaces the suspect; the new leader is healthy for
        # a while, then the flapping fault catches up with it. The old
        # one-shot guard (`suspected is None`) went blind here.
        for _ in range(3):
            self.window(delta=100, leader="s3")
        self.crawl_until_suspected("s3")
        assert [s.leader for s in self.detector.suspicions] == ["s1", "s3"]

    def test_same_leader_resuspected_only_after_cooldown(self):
        for _ in range(3):
            self.window(delta=100)
        self.crawl_until_suspected("s1")
        # Suppose mitigation cleared the suspicion (recovery probation).
        self.detector.unsuspect("s1", self.now)
        # Still inside the cool-down: crawling windows must not re-flag.
        for _ in range(6):
            self.window(delta=2, pending=20)
        assert len(self.detector.suspicions) == 1
        # Past the cool-down the same leader is fair game again.
        self.now += self.detector.config.resuspect_cooldown_ms
        self.crawl_until_suspected("s1")
        assert len(self.detector.suspicions) == 2


class TestMedianInterpolation:
    def test_even_count_interpolates(self):
        profile = PeerLatencyProfile("s1", "s2", [1.0, 2.0, 3.0, 4.0])
        # The upper-element shortcut said 3.0 — half a sample gap high,
        # enough to flip factor-based suspicion on sample-count parity.
        assert profile.median_ms == pytest.approx(2.5)

    def test_odd_count_exact(self):
        profile = PeerLatencyProfile("s1", "s2", [5.0, 1.0, 3.0])
        assert profile.median_ms == pytest.approx(3.0)

    def test_two_samples(self):
        profile = PeerLatencyProfile("s1", "s2", [10.0, 20.0])
        assert profile.median_ms == pytest.approx(15.0)


class TestFlappingChaos:
    @pytest.mark.slow
    def test_flapping_fault_resuspected_every_pulse(self):
        cluster, raft, detectors, driver = deploy_with_detectors()
        nemesis = Nemesis(cluster, raft, injector=FaultInjector(cluster))
        # cpu_slow chases the leadership: pulse 1 hits s1, the detector
        # re-elects, pulse 2 hits whoever leads then.
        nemesis.schedule_flapping(
            "__leader__", "cpu_slow", 3_000.0, on_ms=5_000.0, off_ms=4_000.0, cycles=2
        )
        cluster.run(until_ms=22_000.0)
        suspicions = [s for d in detectors for s in d.suspicions]
        suspected = {s.leader for s in suspicions}
        # Both pulses were caught, against different leader identities.
        assert len(suspected) >= 2
        assert len(suspicions) >= 2


class TestDetectorUnit:
    def test_double_start_rejected(self):
        cluster = Cluster(seed=1)
        raft = deploy_depfast_raft(cluster, GROUP)
        detector = LeaderSlownessDetector(raft["s2"])
        detector.start()
        with pytest.raises(RuntimeError):
            detector.start()

    def test_config_defaults_sane(self):
        config = DetectorConfig()
        assert config.strikes_to_suspect >= 1
        assert 0 < config.commit_rate_fraction < 1
