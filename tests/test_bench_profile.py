"""Tests for the virtual-time profiler and the bench regression gate."""

import json

import pytest

from repro.bench.profile import (
    check_baseline,
    microbench_events_per_sec,
    profile_scenario,
    render_profile,
)
from repro.cli import main as cli_main


def test_microbench_measures_positive_rate():
    rate = microbench_events_per_sec(n_events=2_000, repeats=2)
    assert rate > 0


class TestBaselineGate:
    def _write(self, tmp_path, gate):
        path = tmp_path / "BENCH_kernel.json"
        path.write_text(
            json.dumps(
                {
                    "gate_events_per_sec": gate,
                    "entries": [{"kernel_events_per_sec": gate}],
                }
            )
        )
        return path

    def test_passes_against_tiny_baseline(self, tmp_path, capsys):
        path = self._write(tmp_path, gate=1.0)
        assert check_baseline(path) == 0
        assert "ok" in capsys.readouterr().out

    def test_fails_against_impossible_baseline(self, tmp_path, capsys):
        path = self._write(tmp_path, gate=1e15)
        assert check_baseline(path) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_falls_back_to_newest_entry(self, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        path.write_text(
            json.dumps({"entries": [{"kernel_events_per_sec": 1e15}]})
        )
        assert check_baseline(path) == 1

    def test_committed_baseline_is_loadable(self):
        from repro.bench.profile import BASELINE_PATH

        trajectory = json.loads(BASELINE_PATH.read_text())
        assert trajectory["gate_events_per_sec"] > 0
        assert len(trajectory["entries"]) >= 2


@pytest.mark.slow
def test_profile_scenario_reports_subsystems():
    report = profile_scenario("chain")
    assert report.events_executed > 0
    assert report.events_per_sec > 0
    assert report.virtual_ms == pytest.approx(3_000.0)
    # The big three substrate layers all execute kernel events.
    assert {"repro.runtime", "repro.sim", "repro.net"} <= set(
        report.subsystem_counts
    )
    assert sum(report.subsystem_counts.values()) == report.events_executed
    text = render_profile(report)
    assert "events/sec" in text and "repro.net" in text


def test_cli_profile_microbench(capsys):
    assert cli_main(["profile", "microbench"]) == 0
    assert "events/sec" in capsys.readouterr().out
