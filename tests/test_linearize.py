"""Wing–Gong linearizability checker: unit tests + properties."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.linearize import (
    HistoryRecorder,
    OpRecord,
    check_linearizable,
)


def op(op_id, kind, key, invoked, returned, value=None, result=None, client="c"):
    return OpRecord(
        op_id=op_id,
        client=client,
        kind=kind,
        key=key,
        value=value,
        invoked_at=invoked,
        returned_at=returned,
        result=result,
    )


class TestSequentialHistories:
    def test_put_then_get_is_linearizable(self):
        history = [
            op(0, "put", "k", 0, 1, value="a"),
            op(1, "get", "k", 2, 3, result="a"),
        ]
        assert check_linearizable(history).ok

    def test_stale_read_is_rejected(self):
        history = [
            op(0, "put", "k", 0, 1, value="a"),
            op(1, "put", "k", 2, 3, value="b"),
            op(2, "get", "k", 4, 5, result="a"),  # must see "b"
        ]
        verdict = check_linearizable(history)
        assert not verdict.ok
        assert verdict.failed_key == "k"

    def test_get_before_any_put_sees_absent(self):
        history = [op(0, "get", "k", 0, 1, result=None)]
        assert check_linearizable(history).ok

    def test_delete_result_is_checked(self):
        good = [
            op(0, "put", "k", 0, 1, value="a"),
            op(1, "delete", "k", 2, 3, result="a"),
            op(2, "get", "k", 4, 5, result=None),
        ]
        assert check_linearizable(good).ok
        bad = [
            op(0, "put", "k", 0, 1, value="a"),
            op(1, "delete", "k", 2, 3, result="stale"),
        ]
        assert not check_linearizable(bad).ok


class TestConcurrency:
    def test_concurrent_ops_may_reorder(self):
        # get overlaps both puts: any serialization that explains "a" works.
        history = [
            op(0, "put", "k", 0, 10, value="a"),
            op(1, "put", "k", 0, 10, value="b"),
            op(2, "get", "k", 0, 10, result="a"),
        ]
        assert check_linearizable(history).ok

    def test_nonoverlapping_order_is_enforced(self):
        # put(b) strictly after put(a); later read of "a" is only legal if
        # the read overlaps put(b) — here it does not.
        history = [
            op(0, "put", "k", 0, 1, value="a"),
            op(1, "put", "k", 2, 3, value="b"),
            op(2, "get", "k", 10, 11, result="a"),
        ]
        assert not check_linearizable(history).ok

    def test_keys_are_checked_independently(self):
        history = [
            op(0, "put", "x", 0, 1, value="a"),
            op(1, "put", "y", 0, 1, value="b"),
            op(2, "get", "x", 2, 3, result="a"),
            op(3, "get", "y", 2, 3, result="b"),
        ]
        verdict = check_linearizable(history)
        assert verdict.ok
        assert verdict.keys_checked == 2


class TestIndeterminateOps:
    def test_timed_out_write_may_have_applied(self):
        history = [
            op(0, "put", "k", 0, math.inf, value="a"),  # never returned
            op(1, "get", "k", 5, 6, result="a"),
        ]
        assert check_linearizable(history).ok

    def test_timed_out_write_may_not_have_applied(self):
        history = [
            op(0, "put", "k", 0, math.inf, value="a"),
            op(1, "get", "k", 5, 6, result=None),
        ]
        assert check_linearizable(history).ok

    def test_determinate_ops_must_still_linearize(self):
        history = [
            op(0, "put", "k", 0, math.inf, value="a"),
            op(1, "put", "k", 1, 2, value="b"),
            op(2, "get", "k", 3, 4, result="c"),  # nobody wrote "c"
        ]
        assert not check_linearizable(history).ok


class TestPruning:
    def test_many_unobserved_abandoned_writes_stay_tractable(self):
        """Abandoned writes are concurrent with the whole rest of the
        history; unless their value was observed they must be pruned, or
        the search doubles per abandoned op. 30 of them over a 300-op
        sequential history must check in a tiny state budget."""
        history = []
        now = 0.0
        op_id = 0
        for i in range(150):
            history.append(op(op_id, "put", "k", now, now + 1, value=f"v{i}"))
            op_id += 1
            history.append(op(op_id, "get", "k", now + 2, now + 3, result=f"v{i}"))
            op_id += 1
            now += 4.0
            if i % 5 == 0:  # an abandoned write nobody ever observed
                history.append(
                    op(op_id, "put", "k", now, math.inf, value=f"lost{i}")
                )
                op_id += 1
        verdict = check_linearizable(history, max_states_per_key=20_000)
        assert verdict.ok

    def test_pruning_keeps_observed_abandoned_writes(self):
        # The abandoned put's value IS read later: it must stay in the
        # search (and make the history linearizable)...
        history = [
            op(0, "put", "k", 0, math.inf, value="a"),
            op(1, "get", "k", 5, 6, result="a"),
        ]
        assert check_linearizable(history).ok
        # ...but only reads that returned after its invocation count.
        history = [
            op(0, "get", "k", 0, 1, result="a"),
            op(1, "put", "k", 5, math.inf, value="a"),
        ]
        assert not check_linearizable(history).ok


class TestRecorder:
    def test_recorder_spans_retries_as_one_operation(self):
        recorder = HistoryRecorder()
        op_id = recorder.invoke("c1", ("put", "k", "v"), now=1.0)
        recorder.complete(op_id, None, now=9.0)  # after several retries
        [record] = recorder.operations
        assert record.invoked_at == 1.0
        assert record.returned_at == 9.0
        assert record.determinate

    def test_abandoned_op_stays_indeterminate(self):
        recorder = HistoryRecorder()
        op_id = recorder.invoke("c1", ("put", "k", "v"), now=1.0)
        recorder.abandon(op_id)
        [record] = recorder.operations
        assert not record.determinate
        assert recorder.abandoned == 1


@given(
    script=st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "delete"]),
            st.sampled_from(["x", "y"]),
            st.integers(min_value=0, max_value=9),
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=100, deadline=None)
def test_any_sequential_execution_is_linearizable(script):
    """Operations actually executed one at a time against a real register
    always produce a linearizable history (soundness of the checker)."""
    state = {}
    history = []
    now = 0.0
    for i, (kind, key, value) in enumerate(script):
        invoked, returned = now, now + 1.0
        now += 2.0
        if kind == "put":
            state[key] = f"v{value}"
            history.append(op(i, "put", key, invoked, returned, value=f"v{value}"))
        elif kind == "get":
            history.append(op(i, "get", key, invoked, returned, result=state.get(key)))
        else:
            history.append(
                op(i, "delete", key, invoked, returned, result=state.pop(key, None))
            )
    assert check_linearizable(history).ok
