"""Property-based tests (hypothesis) for the event layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.base import Event
from repro.events.basic import ValueEvent
from repro.events.compound import AndEvent, OrEvent, QuorumEvent


# ---------------------------------------------------------------------------
# QuorumEvent counting semantics
# ---------------------------------------------------------------------------
@given(
    n_total=st.integers(min_value=1, max_value=20),
    data=st.data(),
)
def test_quorum_ready_iff_enough_accepts(n_total, data):
    quorum = data.draw(st.integers(min_value=1, max_value=n_total))
    verdicts = data.draw(
        st.lists(st.booleans(), min_size=n_total, max_size=n_total)
    )
    order = data.draw(st.permutations(range(n_total)))
    event = QuorumEvent(
        quorum, n_total=n_total, classify=lambda child: child.value
    )
    children = [ValueEvent(name=f"v{i}") for i in range(n_total)]
    for child in children:
        event.add(child)
    fired_accepts = 0
    for index in order:
        children[index].set(verdicts[index])
        if verdicts[index]:
            fired_accepts += 1
        assert event.ready() == (fired_accepts >= quorum) or event.ready()
        # Readiness is sticky: once true it never reverts.
        if fired_accepts >= quorum:
            assert event.ready()
    total_accepts = sum(verdicts)
    assert event.ready() == (total_accepts >= quorum)
    assert event.n_ok == total_accepts
    assert event.n_reject == n_total - total_accepts
    assert event.definitely_failed() == (
        event.n_reject > n_total - quorum
    )
    # A quorum event can be ready or definitely failed, never both.
    assert not (event.ready() and event.definitely_failed())


@given(
    n_total=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_quorum_trigger_order_does_not_matter(n_total, data):
    """Any order of the same verdicts gives the same final state."""
    quorum = data.draw(st.integers(min_value=1, max_value=n_total))
    verdicts = data.draw(st.lists(st.booleans(), min_size=n_total, max_size=n_total))
    orders = [
        data.draw(st.permutations(range(n_total))),
        data.draw(st.permutations(range(n_total))),
    ]
    finals = []
    for order in orders:
        event = QuorumEvent(quorum, n_total=n_total, classify=lambda c: c.value)
        children = [ValueEvent() for _ in range(n_total)]
        for child in children:
            event.add(child)
        for index in order:
            children[index].set(verdicts[index])
        finals.append((event.ready(), event.n_ok, event.n_reject))
    assert finals[0] == finals[1]


# ---------------------------------------------------------------------------
# And/Or composition against a boolean reference model
# ---------------------------------------------------------------------------
# A tree is ("leaf", index) | ("and", [trees]) | ("or", [trees]).
def _tree_strategy(n_leaves):
    leaf = st.tuples(st.just("leaf"), st.integers(min_value=0, max_value=n_leaves - 1))
    return st.recursive(
        leaf,
        lambda children: st.tuples(
            st.sampled_from(["and", "or"]),
            st.lists(children, min_size=1, max_size=3),
        ),
        max_leaves=8,
    )


def _build(tree, leaves):
    kind = tree[0]
    if kind == "leaf":
        return leaves[tree[1]]
    compound = AndEvent(name="and") if kind == "and" else OrEvent(name="or")
    for child_tree in tree[1]:
        compound.add(_build(child_tree, leaves))
    return compound


def _evaluate(tree, fired):
    kind = tree[0]
    if kind == "leaf":
        return fired[tree[1]]
    values = [_evaluate(child, fired) for child in tree[1]]
    return all(values) if kind == "and" else any(values)


@given(data=st.data())
@settings(max_examples=200)
def test_nested_and_or_matches_boolean_semantics(data):
    n_leaves = data.draw(st.integers(min_value=1, max_value=6))
    tree = data.draw(_tree_strategy(n_leaves))
    fired_set = data.draw(
        st.sets(st.integers(min_value=0, max_value=n_leaves - 1))
    )
    # NOTE: one Event instance per leaf index; the same leaf may appear in
    # several places in the tree, which must still evaluate consistently.
    leaves = [Event(name=f"leaf{i}") for i in range(n_leaves)]
    root = _build(tree, leaves)
    for index in sorted(fired_set):
        leaves[index].trigger()
    fired = [index in fired_set for index in range(n_leaves)]
    assert root.ready() == _evaluate(tree, fired)


@given(data=st.data())
@settings(max_examples=100)
def test_trigger_before_or_after_composition_is_equivalent(data):
    """Adding an already-fired child == firing it after adding."""
    n_leaves = data.draw(st.integers(min_value=1, max_value=5))
    tree = data.draw(_tree_strategy(n_leaves))
    fired_set = data.draw(st.sets(st.integers(min_value=0, max_value=n_leaves - 1)))

    before = [Event() for _ in range(n_leaves)]
    for index in fired_set:
        before[index].trigger()  # fire BEFORE building the tree
    root_before = _build(tree, before)

    after = [Event() for _ in range(n_leaves)]
    root_after = _build(tree, after)
    for index in sorted(fired_set):
        after[index].trigger()  # fire AFTER building the tree

    assert root_before.ready() == root_after.ready()


# ---------------------------------------------------------------------------
# Event core invariants
# ---------------------------------------------------------------------------
@given(n_subscribers=st.integers(min_value=0, max_value=50))
def test_every_subscriber_notified_exactly_once(n_subscribers):
    event = Event()
    hits = [0] * n_subscribers

    def make(i):
        def notify(_event):
            hits[i] += 1

        return notify

    for i in range(n_subscribers):
        event.subscribe(make(i))
    event.trigger()
    event.trigger()  # idempotent
    assert hits == [1] * n_subscribers


@given(n_late=st.integers(min_value=0, max_value=20))
def test_late_subscribers_fire_immediately(n_late):
    event = Event()
    event.trigger()
    hits = []
    for _ in range(n_late):
        event.subscribe(lambda _ev: hits.append(1))
    assert len(hits) == n_late
