"""Tests for Multi-Paxos on DepFast: protocol, fail-slow tolerance, recovery."""

import pytest

from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.paxos import PaxosConfig, deploy_paxos
from repro.paxos.service import find_paxos_leader, wait_for_paxos_leader
from repro.workload.driver import ClosedLoopDriver, KvServiceClient
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def deploy(n=3, seed=61, **config_kwargs):
    cluster = Cluster(seed=seed)
    group = [f"s{i+1}" for i in range(n)]
    config = PaxosConfig(preferred_leader="s1", **config_kwargs)
    nodes = deploy_paxos(cluster, group, config=config)
    wait_for_paxos_leader(cluster, nodes)
    return cluster, nodes, group


def run_ops(cluster, group, ops):
    node = cluster.add_client(f"cx{cluster.kernel.now:.0f}")
    node.start()
    client = KvServiceClient(node, group)
    results = []

    def script():
        for op in ops:
            ok, value = yield from client.execute(op, size_bytes=64)
            results.append((ok, value))

    node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 20_000.0)
    return results


class TestLeadership:
    def test_preferred_leader_wins(self):
        cluster, nodes, group = deploy()
        assert find_paxos_leader(nodes).id == "s1"

    def test_single_leader(self):
        cluster, nodes, group = deploy(n=5)
        cluster.run(until_ms=5000.0)
        leaders = [n for n in nodes.values() if n.is_leader]
        assert len(leaders) == 1

    def test_leader_crash_triggers_new_prepare_round(self):
        cluster, nodes, group = deploy()
        leader = find_paxos_leader(nodes)
        leader.node.crash()
        cluster.run(until_ms=cluster.kernel.now + 10_000.0)
        new_leader = find_paxos_leader(nodes)
        assert new_leader is not None
        assert new_leader.id != leader.id
        assert new_leader.ballot > leader.ballot

    def test_even_group_rejected(self):
        with pytest.raises(ValueError):
            deploy_paxos(Cluster(), ["a", "b"])


class TestReplication:
    def test_put_get_roundtrip(self):
        cluster, nodes, group = deploy()
        results = run_ops(cluster, group, [("put", "k", "v"), ("get", "k")])
        assert results == [(True, None), (True, "v")]

    def test_replicas_converge(self):
        cluster, nodes, group = deploy()
        ops = [("put", f"k{i}", f"v{i}") for i in range(50)]
        results = run_ops(cluster, group, ops)
        assert all(ok for ok, _ in results)
        cluster.run(until_ms=cluster.kernel.now + 2000.0)
        checksums = {n.kv.checksum() for n in nodes.values()}
        assert len(checksums) == 1
        assert all(n.last_applied >= 50 for n in nodes.values())

    def test_committed_values_survive_leader_change(self):
        cluster, nodes, group = deploy()
        results = run_ops(cluster, group, [("put", "stable", "1")])
        assert results[0][0]
        find_paxos_leader(nodes).node.crash()
        cluster.run(until_ms=cluster.kernel.now + 10_000.0)
        results = run_ops(cluster, group, [("get", "stable")])
        assert results == [(True, "1")]

    def test_follower_redirects(self):
        cluster, nodes, group = deploy()
        node = cluster.add_client("c1")
        node.start()
        client = KvServiceClient(node, ["s2", "s1", "s3"])
        results = []

        def script():
            ok, _ = yield from client.execute(("put", "a", "b"), size_bytes=64)
            results.append(ok)

        node.runtime.spawn(script())
        cluster.run(until_ms=cluster.kernel.now + 5000.0)
        assert results == [True]
        assert client.redirects >= 1


class TestFailSlowTolerance:
    def test_slow_acceptor_does_not_stall_commits(self):
        cluster, nodes, group = deploy()
        FaultInjector(cluster).inject("s3", "cpu_slow")
        results = run_ops(cluster, group, [("put", f"k{i}", "v") for i in range(20)])
        assert all(ok for ok, _ in results)

    @pytest.mark.slow
    def test_throughput_band_under_network_slow_acceptor(self):
        cluster, nodes, group = deploy(seed=67)
        workload = YcsbWorkload(cluster.rng.stream("y"), record_count=1000, value_size=1000)
        driver = ClosedLoopDriver(cluster, group, workload, n_clients=16)
        driver.start()
        cluster.run(until_ms=5000.0)
        healthy = driver.report(2000.0, 5000.0)
        FaultInjector(cluster).inject("s3", "network_slow")
        cluster.run(until_ms=6000.0)  # settle
        cluster.run(until_ms=9000.0)
        faulty = driver.report(6000.0, 9000.0)
        drift = abs(faulty.throughput_ops_s - healthy.throughput_ops_s)
        assert drift / healthy.throughput_ops_s < 0.10

    def test_repair_fills_acceptor_holes_after_fault(self):
        cluster, nodes, group = deploy(seed=71)
        injector = FaultInjector(cluster)
        injector.inject("s3", "cpu_slow")
        ops = [("put", f"k{i}", "v" * 100) for i in range(200)]
        results = run_ops(cluster, group, ops)
        assert all(ok for ok, _ in results)
        injector.clear("s3")
        cluster.run(until_ms=cluster.kernel.now + 30_000.0)
        leader = find_paxos_leader(nodes)
        assert nodes["s3"].contiguous_accepted >= leader.commit_index - 64
        assert nodes["s3"].kv.checksum() == leader.kv.checksum() or (
            nodes["s3"].last_applied >= leader.last_applied - 64
        )


class TestRecoveryDetails:
    def test_new_leader_adopts_accepted_values(self):
        """A value accepted by a majority must survive re-election."""
        cluster, nodes, group = deploy()
        results = run_ops(cluster, group, [("put", "x", "precious")])
        assert results[0][0]
        old = find_paxos_leader(nodes)
        old.node.crash()
        cluster.run(until_ms=cluster.kernel.now + 10_000.0)
        new = find_paxos_leader(nodes)
        # The slot holding "x" is still applied on the new leader.
        assert new.kv.get("x") == "precious"

    def test_noop_fills_holes_from_prepare(self):
        cluster, nodes, group = deploy()
        run_ops(cluster, group, [("put", "a", "1")])
        leader = find_paxos_leader(nodes)
        leader.node.crash()
        cluster.run(until_ms=cluster.kernel.now + 10_000.0)
        # Whatever happened, the new leader's applied prefix is contiguous.
        new = find_paxos_leader(nodes)
        for slot in range(1, new.last_applied + 1):
            assert slot in new.accepted
