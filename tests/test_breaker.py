"""Write-behind breaker WAL, disk attribution, and the controller wiring."""

import pytest

from repro.breaker.attribution import (
    AttributionConfig,
    DiskAttributor,
    Suspect,
    classify_suspects,
)
from repro.breaker.write_behind import (
    BreakerConfig,
    BreakerState,
    CircuitBreakerWal,
    install_breaker_wals,
)
from repro.cluster.cluster import Cluster
from repro.detector.mitigation import MitigationConfig, MitigationController
from repro.detector.scoring import PeerHealth, ScoringConfig, SlownessScorer
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, wait_for_leader
from repro.runtime.io_helper import IoHelperPool
from repro.sim.kernel import Kernel
from repro.sim.resources import DiskResource
from repro.trace.tracepoints import Tracer
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload


def make_breaker_wal(bandwidth=1.0, latency=0.0, **config):
    kernel = Kernel()
    disk = DiskResource(kernel, bandwidth_mbps=bandwidth, op_latency_ms=latency)
    wal = CircuitBreakerWal(
        IoHelperPool(disk, node="n0"), config=BreakerConfig(**config)
    )
    return kernel, wal


class TestCircuitBreakerWal:
    def test_closed_breaker_is_a_plain_wal(self):
        kernel, wal = make_breaker_wal()
        wal.append(1000)
        event = wal.sync()
        assert not event.ready()  # a real fsync: the caller waits
        kernel.run_until_idle()
        assert event.ready()
        assert wal.durable_bytes == 1000
        assert wal.absorbed_syncs == 0

    def test_trip_releases_acks_parked_on_inflight_fsyncs(self):
        # 1KB on a 0.001 MB/s disk: the fsync takes ~1000ms. Trip before
        # it lands — the caller's ack fires at trip time (its bytes are
        # already in the device FIFO), but durability bookkeeping keeps
        # following the real fsync.
        kernel, wal = make_breaker_wal(bandwidth=0.001)
        wal.append(1000)
        event = wal.sync()
        assert not event.ready()
        kernel.run(10.0)
        wal.trip()
        assert event.ready()  # released by the trip, not the platter
        assert event.triggered_at == pytest.approx(10.0)
        assert wal.early_acks_on_trip == 1
        assert wal.durable_bytes == 0  # the real fsync is still in flight
        kernel.run(10_000.0)  # 1000B payload + 4KiB flush-cache at 1B/ms
        assert wal.durable_bytes == 1000

    def test_open_breaker_acks_immediately_from_memory(self):
        kernel, wal = make_breaker_wal()
        wal.trip()
        assert wal.state == BreakerState.OPEN
        wal.append(1000)
        event = wal.sync()
        assert event.ready()  # pre-completed: no disk wait on the ack path
        assert wal.queued_bytes == 1000
        assert wal.durable_bytes == 0
        assert wal.absorbed_syncs == 1

    def test_on_durable_deferred_until_probe_drain(self):
        kernel, wal = make_breaker_wal(probe_interval_ms=10.0)
        wal.trip()
        fired = []
        wal.append(500)
        wal.sync(on_durable=lambda: fired.append("a"))
        assert fired == []  # acked, but not durable yet
        kernel.run(100.0)  # probe ticks drain the queue through the disk
        assert fired == ["a"]
        assert wal.durable_bytes == 500
        assert wal.queued_bytes == 0

    def test_probe_drain_preserves_fifo_order(self):
        kernel, wal = make_breaker_wal(probe_interval_ms=10.0, probe_max_bytes=100)
        wal.trip()
        fired = []
        for tag in ("a", "b", "c"):
            wal.append(100)
            wal.sync(on_durable=lambda tag=tag: fired.append(tag))
        kernel.run(500.0)
        assert fired == ["a", "b", "c"]

    def test_passthrough_at_byte_budget(self):
        kernel, wal = make_breaker_wal(
            max_queued_bytes=1000, probe_interval_ms=10_000.0
        )
        wal.trip()
        wal.append(600)
        wal.sync()
        assert wal.queued_bytes == 600
        wal.append(600)
        event = wal.sync()  # 1200 > budget: the whole queue flushes for real
        assert not event.ready()  # backpressure: this caller waits
        assert wal.passthrough_syncs == 1
        assert wal.queued_bytes == 0
        kernel.run(100.0)  # bounded: the probe timer rearms while OPEN
        assert event.ready()
        assert wal.durable_bytes == 1200

    def test_passthrough_at_lag_budget(self):
        kernel, wal = make_breaker_wal(max_lag_ms=50.0, probe_interval_ms=10_000.0)
        wal.trip()
        wal.append(100)
        wal.sync()
        kernel.run(100.0)  # the queue head is now 100ms old, over budget
        wal.append(100)
        event = wal.sync()
        assert not event.ready()
        assert wal.passthrough_syncs == 1

    def test_release_drains_queue_and_closes(self):
        kernel, wal = make_breaker_wal(probe_interval_ms=10_000.0)
        wal.trip()
        fired = []
        for tag in ("a", "b"):
            wal.append(200)
            wal.sync(on_durable=lambda tag=tag: fired.append(tag))
        wal.release()
        assert wal.state == BreakerState.DRAINING
        kernel.run_until_idle()
        assert wal.state == BreakerState.CLOSED
        assert fired == ["a", "b"]
        assert wal.durable_bytes == 400
        assert wal.releases == 1

    def test_retire_drops_queue_and_suppresses_callbacks(self):
        kernel, wal = make_breaker_wal(probe_interval_ms=10.0)
        wal.trip()
        fired = []
        wal.append(300)
        wal.sync(on_durable=lambda: fired.append("lost"))
        wal.retire()  # the process died; the queue dies with it
        assert wal.queued_bytes == 0
        assert wal.dropped_entries_on_retire == 1
        assert wal.dropped_bytes_on_retire == 300
        kernel.run(200.0)  # in-flight probe timers must stay inert
        assert fired == []
        assert wal.durable_bytes == 0

    def test_staleness_high_water_marks(self):
        kernel, wal = make_breaker_wal(probe_interval_ms=10_000.0)
        wal.trip()
        wal.append(700)
        wal.sync()
        kernel.run(40.0)
        wal.append(300)
        wal.sync()
        assert wal.queued_bytes_hwm == 1000
        assert wal.lag_ms_hwm == pytest.approx(40.0)

    def test_empty_queue_probe_is_barrier_only_health_sample(self):
        kernel, wal = make_breaker_wal(probe_interval_ms=10.0)
        wal.trip()
        kernel.run(55.0)  # several probe intervals with nothing queued
        assert wal.probe_fsyncs >= 2
        assert wal.durable_bytes == 0  # barriers carry no payload bytes

    def test_noop_sync_while_open_does_not_enqueue(self):
        kernel, wal = make_breaker_wal()
        wal.trip()
        event = wal.sync()  # nothing buffered
        assert event.ready()
        assert wal.noop_syncs == 1
        assert wal.queued_bytes == 0


def feed_fsyncs(tracer, node, latency_ms, n=8, now=0.0):
    for i in range(n):
        tracer.on_fsync_complete(node, 4096, latency_ms, now + i)


class TestDiskAttributor:
    def attributor(self, **overrides):
        tracer = Tracer(Kernel())
        return tracer, DiskAttributor(tracer, AttributionConfig(**overrides))

    def test_slow_disk_flagged_against_cross_node_baseline(self):
        tracer, disks = self.attributor(suspect_windows=2)
        feed_fsyncs(tracer, "s1", 1.0)
        feed_fsyncs(tracer, "s2", 1.0)
        feed_fsyncs(tracer, "s3", 30.0)
        assert disks.score("s3") > 1.0
        assert disks.score("s2") <= 1.0
        disks.roll_window(500.0)
        assert disks.state("s3") == PeerHealth.HEALTHY  # hysteresis holds
        disks.roll_window(1000.0)
        assert disks.state("s3") == PeerHealth.SUSPECT
        assert disks.suspects() == ["s3"]
        assert disks.first_suspected_at() == 1000.0

    def test_single_node_never_judged(self):
        tracer, disks = self.attributor()
        feed_fsyncs(tracer, "s1", 500.0)  # huge, but nothing to compare against
        assert disks.score("s1") == 0.0
        disks.roll_window(500.0)
        disks.roll_window(1000.0)
        assert disks.suspects() == []

    def test_absolute_floor_filters_fast_disk_noise(self):
        tracer, disks = self.attributor(abs_floor_ms=2.0)
        feed_fsyncs(tracer, "s1", 0.05)
        feed_fsyncs(tracer, "s2", 0.5)  # 10x ratio, but absolutely tiny
        assert disks.score("s2") == 0.0

    def test_stalled_inflight_fsync_detected_without_completions(self):
        """A stalled disk delivers no completion samples at all — the
        age of its one in-flight fsync must indict it anyway."""
        tracer, disks = self.attributor(suspect_windows=1, min_samples=3)
        feed_fsyncs(tracer, "s1", 1.0)  # healthy cross-node baseline
        tracer.on_fsync_begin("s3", 1 << 20, 0.0)  # issued... and stuck
        for window in range(1, 4):
            disks.roll_window(window * 500.0)
        assert disks.censored_samples >= 3
        assert disks.score("s3") > 1.0
        assert disks.suspects() == ["s3"]
        # The stall finally lands: the real latency replaces censored ages.
        tracer.on_fsync_complete("s3", 1 << 20, 2_000.0, 2_000.0)
        assert not disks._inflight["s3"]

    def test_young_inflight_fsyncs_fold_no_censored_samples(self):
        tracer, disks = self.attributor()
        feed_fsyncs(tracer, "s1", 4.0)
        feed_fsyncs(tracer, "s2", 4.0)
        tracer.on_fsync_begin("s2", 4096, 499.0)  # 1ms old at the roll
        disks.roll_window(500.0)
        assert disks.censored_samples == 0
        assert disks.suspects() == []

    def test_abort_drops_stale_inflight_entries(self):
        """A crashed node's in-flight fsync never completes: without the
        abort hook its issue time would age into a permanent suspicion."""
        tracer, disks = self.attributor(suspect_windows=1, min_samples=3)
        feed_fsyncs(tracer, "s1", 1.0)
        feed_fsyncs(tracer, "s3", 1.0)
        tracer.on_fsync_begin("s3", 4096, 0.0)
        tracer.on_fsync_abort("s3", 10.0)  # crash retires the WAL
        for window in range(1, 8):
            disks.roll_window(window * 500.0)
        assert disks.censored_samples == 0
        assert disks.suspects() == []

    def test_recovered_disk_clears_after_healthy_streak(self):
        tracer, disks = self.attributor(suspect_windows=1, clear_windows=2)
        feed_fsyncs(tracer, "s1", 1.0)
        feed_fsyncs(tracer, "s2", 30.0)
        disks.roll_window(500.0)
        assert disks.state("s2") == PeerHealth.SUSPECT
        feed_fsyncs(tracer, "s2", 1.0, n=60)  # EWMA decays back to baseline
        assert disks.score("s2") < 1.0
        disks.roll_window(1000.0)
        assert disks.state("s2") == PeerHealth.SUSPECT  # not yet
        disks.roll_window(1500.0)
        assert disks.state("s2") == PeerHealth.HEALTHY


class TestClassifySuspects:
    def build(self):
        kernel = Kernel()
        tracer = Tracer(kernel)
        scorer = SlownessScorer(tracer, ScoringConfig(min_samples=4, suspect_windows=1))
        disks = DiskAttributor(tracer, AttributionConfig(suspect_windows=1))
        return tracer, scorer, disks

    def test_disk_verdict_wins_over_link_symptom(self):
        tracer, scorer, disks = self.build()
        # s3's slow disk makes its *acks* slow: the link scorer sees it
        # too, but attribution must tag the disk, not the link.
        for _ in range(10):
            tracer.on_rpc_complete("s1", "s2", "append", 1.0, 0.0)
            tracer.on_rpc_complete("s1", "s3", "append", 20.0, 0.0)
        feed_fsyncs(tracer, "s1", 1.0)
        feed_fsyncs(tracer, "s2", 1.0)
        feed_fsyncs(tracer, "s3", 30.0)
        scorer.roll_window(500.0)
        disks.roll_window(500.0)
        assert classify_suspects(scorer, disks) == [Suspect("s3", "disk")]

    def test_link_suspect_with_healthy_disk_tagged_as_link(self):
        tracer, scorer, disks = self.build()
        for _ in range(10):
            tracer.on_rpc_complete("s1", "s2", "append", 1.0, 0.0)
            tracer.on_rpc_complete("s1", "s3", "append", 20.0, 0.0)
        feed_fsyncs(tracer, "s1", 1.0)
        feed_fsyncs(tracer, "s2", 1.0)
        feed_fsyncs(tracer, "s3", 1.0)  # disk is fine; the link is not
        scorer.roll_window(500.0)
        disks.roll_window(500.0)
        assert classify_suspects(scorer, disks) == [Suspect("s3", "link:s1")]


@pytest.mark.slow
class TestControllerBreakerIntegration:
    def deploy(self, seed=7):
        from repro.bench.breaker import BACKEND_CONTENTION
        from repro.faults.injector import FaultInjector

        cluster = Cluster(seed=seed)
        group = ["s1", "s2", "s3"]
        raft = deploy_depfast_raft(
            cluster, group, config=RaftConfig(preferred_leader="s1")
        )
        install_breaker_wals(cluster, group)
        controller = MitigationController(
            cluster,
            raft,
            detectors=[],
            config=MitigationConfig(
                window_ms=250.0,
                attribution=AttributionConfig(suspect_windows=1, min_samples=3),
                breaker_probation_windows=2,
            ),
        )
        controller.start()
        workload = YcsbWorkload(
            cluster.rng.stream("ycsb"), record_count=1_000, value_size=200
        )
        driver = ClosedLoopDriver(cluster, group, workload, n_clients=8)
        wait_for_leader(cluster, raft)
        driver.start()
        return cluster, raft, controller, FaultInjector(cluster), BACKEND_CONTENTION

    def test_disk_fault_trips_breaker_not_demotion(self):
        cluster, raft, controller, injector, spec = self.deploy()
        injector.inject_transient("s3", spec, 500.0, 3_000.0)
        cluster.run(3_000.0)
        wal = cluster.node("s3").wal
        assert controller.breaker_trips == 1
        assert wal.state == BreakerState.OPEN
        assert wal.absorbed_syncs > 0
        # The link symptom was diverted to the breaker, not a demotion.
        assert controller.demotions == 0
        assert [a.kind for a in controller.actions] == ["breaker_trip"]

    def test_recovered_disk_releases_breaker_after_probation(self):
        cluster, raft, controller, injector, spec = self.deploy()
        injector.inject_transient("s3", spec, 500.0, 2_000.0)  # clears at 2500
        cluster.run(8_000.0)
        wal = cluster.node("s3").wal
        assert controller.breaker_trips == 1
        assert controller.breaker_releases == 1
        assert wal.state == BreakerState.CLOSED
        assert wal.queued_bytes == 0

    def test_fault_free_run_trips_nothing(self):
        cluster, raft, controller, injector, spec = self.deploy()
        cluster.run(5_000.0)
        assert controller.breaker_trips == 0
        assert controller.demotions == 0
