"""Unit + property tests for the streaming per-link slowness scorer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.detector.scoring import (
    LinkScore,
    PeerHealth,
    ScoringConfig,
    SlownessScorer,
)
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader
from repro.sim.kernel import Kernel
from repro.trace.tracepoints import Tracer
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]

latencies = st.lists(
    st.floats(min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


class TestLinkScoreProperties:
    @given(samples=latencies, alpha=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_ewma_deterministic_and_bounded(self, samples, alpha):
        a, b = LinkScore("s1", "s2"), LinkScore("s1", "s2")
        for latency in samples:
            a.observe_rtt(latency, alpha)
            b.observe_rtt(latency, alpha)
        # Same stream, same fold: bit-identical — no hidden state, no
        # accumulation-order dependence.
        assert a.rtt_ewma_ms == b.rtt_ewma_ms
        assert a.samples == b.samples == len(samples)
        # An exponentially-weighted mean can never escape the sample hull.
        assert min(samples) <= a.rtt_ewma_ms <= max(samples)

    @given(
        rounds=st.lists(st.booleans(), min_size=1, max_size=60),
        alpha=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_miss_ewma_bounded(self, rounds, alpha):
        link = LinkScore("s1", "s2")
        for in_quorum in rounds:
            link.observe_round(in_quorum, alpha)
        assert 0.0 <= link.miss_ewma <= 1.0
        if all(rounds):
            assert link.miss_ewma == 0.0

    def test_constant_stream_converges_to_constant(self):
        link = LinkScore("s1", "s2")
        for _ in range(50):
            link.observe_rtt(7.5, 0.2)
        assert link.rtt_ewma_ms == pytest.approx(7.5)


class TestScorerHysteresis:
    def scorer(self, **overrides):
        config = ScoringConfig(**overrides)
        return SlownessScorer(Tracer(Kernel()), config)

    def feed(self, scorer, peer_ms):
        for peer, latency in peer_ms.items():
            scorer._on_rpc("s1", peer, "append", latency, 0.0)

    def test_slow_link_needs_consecutive_windows(self):
        scorer = self.scorer(min_samples=4, suspect_windows=3)
        for _ in range(10):
            self.feed(scorer, {"s2": 1.0, "s3": 20.0})
        assert scorer.score("s1", "s3") > 1.0
        assert scorer.score("s1", "s2") <= 1.0
        scorer.roll_window(500.0)
        scorer.roll_window(1000.0)
        assert scorer.state("s1", "s3") == PeerHealth.HEALTHY  # not yet
        edges = scorer.roll_window(1500.0)
        assert scorer.state("s1", "s3") == PeerHealth.SUSPECT
        assert [(e.peer, e.state) for e in edges] == [("s3", PeerHealth.SUSPECT)]
        assert scorer.suspects_of("s1") == ["s3"]

    def test_recovered_link_needs_consecutive_clear_windows(self):
        scorer = self.scorer(min_samples=4, suspect_windows=1, clear_windows=3)
        for _ in range(10):
            self.feed(scorer, {"s2": 1.0, "s3": 20.0})
        scorer.roll_window(500.0)
        assert scorer.state("s1", "s3") == PeerHealth.SUSPECT
        # The fault clears; the EWMA decays back toward the baseline.
        for _ in range(60):
            self.feed(scorer, {"s2": 1.0, "s3": 1.0})
        assert scorer.score("s1", "s3") < 1.0
        scorer.roll_window(1000.0)
        scorer.roll_window(1500.0)
        assert scorer.state("s1", "s3") == PeerHealth.SUSPECT  # not yet
        scorer.roll_window(2000.0)
        assert scorer.state("s1", "s3") == PeerHealth.HEALTHY
        # Four transitions were recorded? No: one in, one out.
        assert len(scorer.transitions) == 2

    def test_unjudged_links_score_zero(self):
        scorer = self.scorer(min_samples=8)
        self.feed(scorer, {"s2": 1.0})
        assert scorer.score("s1", "s2") == 0.0
        assert scorer.scores_from("s1") == {"s2": 0.0}

    def test_sole_judged_peer_has_no_rtt_baseline(self):
        """With one judged link the "best link" baseline *is* the suspect
        link, so the ratio pins to 1.0 — the RTT component must report
        "cannot judge relatively", not a constant 1/rtt_factor."""
        scorer = self.scorer(min_samples=4)
        for _ in range(10):
            self.feed(scorer, {"s2": 500.0})  # absurdly slow, but alone
        assert scorer.score("s1", "s2") == 0.0
        scorer.roll_window(500.0)
        scorer.roll_window(1000.0)
        scorer.roll_window(1500.0)
        assert scorer.suspects_of("s1") == []
        # A second judged peer restores the relative comparison.
        for _ in range(10):
            self.feed(scorer, {"s3": 1.0})
        assert scorer.score("s1", "s2") > 1.0

    def test_sole_peer_still_judged_by_quorum_misses(self):
        """The single-peer guard disables only the RTT ratio: a sole peer
        that keeps missing the winning quorum is still scoreable."""
        from repro.trace.tracepoints import QuorumArrival

        scorer = self.scorer(min_samples=8)
        for _ in range(10):
            self.feed(scorer, {"s2": 1.0})
        for _ in range(60):
            scorer._on_quorum(QuorumArrival("s1", "s2", False, None, 2, 0.0))
        assert scorer.score("s1", "s2") >= 1.0


def _scored_run(seed, fault=None, until_ms=4_000.0):
    """A short live-cluster run; returns the scorer's full link state."""
    cluster = Cluster(seed=seed)
    raft = deploy_depfast_raft(
        cluster, GROUP, config=RaftConfig(preferred_leader="s1")
    )
    scorer = SlownessScorer(cluster.tracer, ScoringConfig())
    wait_for_leader(cluster, raft)
    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"), record_count=1_000, value_size=200
    )
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=8)
    driver.start()
    if fault is not None:
        FaultInjector(cluster).inject_at("s3", fault, 1_000.0)
    t = 0.0
    while t < until_ms:
        t += 500.0
        cluster.run(t)
        scorer.roll_window(t)
    leader = find_leader(raft)
    state = {
        key: (link.rtt_ewma_ms, link.samples, link.miss_ewma, link.rounds)
        for key, link in sorted(scorer.links.items())
    }
    return scorer, state, leader.id if leader else None


class TestScorerOnCluster:
    @pytest.mark.slow
    def test_scores_are_deterministic(self):
        _, state_a, leader_a = _scored_run(seed=11)
        _, state_b, leader_b = _scored_run(seed=11)
        # Same seed, same trace stream, bit-identical EWMAs throughout.
        assert state_a == state_b
        assert leader_a == leader_b
        assert state_a  # the run actually produced judged links

    @pytest.mark.slow
    def test_fault_free_run_has_no_suspects(self):
        scorer, _state, leader = _scored_run(seed=11, until_ms=6_000.0)
        assert leader is not None
        for caller in GROUP:
            assert scorer.suspects_of(caller) == []

    @pytest.mark.slow
    def test_slow_follower_flagged_by_leader_links(self):
        scorer, _state, leader = _scored_run(
            seed=11, fault="cpu_slow", until_ms=10_000.0
        )
        assert leader == "s1"
        assert scorer.suspects_of("s1") == ["s3"]
