"""Nested compound events: fast-path/slow-path consensus (§3.2).

Transcribes the paper's OrEvent(fast_ok, fast_reject) example into a
runnable Fast-Paxos-style round over five acceptors, showing the three
interesting outcomes: clean fast path, conflict-driven slow path, and a
fail-slow acceptor that the fast quorum simply leaves behind.

Run:  python examples/fastpath_consensus.py
"""

from repro import Cluster
from repro.raft.fastpath import FastPathAcceptor, FastPathCoordinator


def world():
    cluster = Cluster(seed=3)
    coord = cluster.add_node("coord")
    acceptors = {}
    for i in range(5):
        node = cluster.add_node(f"a{i+1}")
        acceptors[node.node_id] = FastPathAcceptor(node)
        node.start()
    coord.start()
    return cluster, coord, FastPathCoordinator(coord, sorted(acceptors)), acceptors


def propose(cluster, coord, coordinator, decree, value):
    box = []

    def script():
        outcome = yield from coordinator.propose(decree, value)
        box.append(outcome)

    start = cluster.kernel.now
    coord.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 10_000.0)
    outcome = box[0]
    print(
        f"  decided via {outcome.path:<5} path in {outcome.decided_at_ms - start:7.2f} ms "
        f"(fast acks={outcome.fast_ok}, fast rejects={outcome.fast_reject})"
    )


def main() -> None:
    print("clean round (all five acceptors agree):")
    cluster, coord, coordinator, _ = world()
    propose(cluster, coord, coordinator, 1, "X")

    print("contended round (two acceptors hold a rival value):")
    cluster, coord, coordinator, acceptors = world()
    acceptors["a1"].preseed(1, "RIVAL")
    acceptors["a2"].preseed(1, "RIVAL")
    propose(cluster, coord, coordinator, 1, "X")

    print("one fail-slow acceptor (5% CPU): the 4/5 fast quorum skips it:")
    cluster, coord, coordinator, _ = world()
    cluster.node("a5").cpu.set_quota(0.0001)
    propose(cluster, coord, coordinator, 1, "X")


if __name__ == "__main__":
    main()
