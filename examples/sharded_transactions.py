"""Cross-shard transactions over DepFastRaft shards (§5 extension).

Deploys three shards (s1–s9), runs 2PC transactions from a client-side
coordinator — including a conflict that aborts via the "any-shard-voted-no"
OrEvent branch — and shows that one fail-slow follower in every shard does
not slow commits down.

Run:  python examples/sharded_transactions.py
"""

from repro import Cluster, FaultInjector
from repro.txn.store import deploy_sharded_store


def run(cluster, coordinator, writes, label):
    outcomes = []

    def script():
        outcome = yield from coordinator.transact(writes)
        outcomes.append(outcome)

    coordinator.node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 20_000.0)
    outcome = outcomes[0]
    verdict = "COMMIT" if outcome.committed else f"ABORT ({outcome.reason})"
    print(f"  {label:<38} -> {verdict:<18} {outcome.latency_ms:7.2f} ms  shards={outcome.shards}")
    return outcome


def main() -> None:
    cluster = Cluster(seed=23)
    store = deploy_sharded_store(cluster, n_shards=3, replicas=3)
    store.wait_for_leaders()
    client = cluster.add_client("c1")
    client.start()
    coordinator = store.coordinator(client)

    print("shard layout:")
    for shard, group in store.shard_map.all_groups().items():
        print(f"  {shard}: {group}")

    print("\ntransactions:")
    run(cluster, coordinator, {"alice": 100, "bob": 50, "carol": 75}, "multi-shard transfer")

    # Plant a conflicting prepared transaction on alice's shard.
    shard = store.shard_map.shard_for("alice")

    def preseed():
        yield from coordinator._clients[shard].execute(
            ("txn_prepare", "rival-txn", (("alice", 0),)), size_bytes=64
        )

    client.runtime.spawn(preseed())
    cluster.run(until_ms=cluster.kernel.now + 5000.0)
    run(cluster, coordinator, {"alice": 1, "bob": 2}, "conflicting transaction")

    # Release the rival and show the retry succeeding.
    def release():
        yield from coordinator._clients[shard].execute(("txn_abort", "rival-txn"), size_bytes=64)

    client.runtime.spawn(release())
    cluster.run(until_ms=cluster.kernel.now + 5000.0)
    run(cluster, coordinator, {"alice": 1, "bob": 2}, "retry after rival aborts")

    print("\ninjecting cpu_slow into one follower of EVERY shard ...")
    injector = FaultInjector(cluster)
    for shard_name in store.shard_map.shard_names():
        injector.inject(store.shard_map.group_of(shard_name)[-1], "cpu_slow")
    run(cluster, coordinator, {"dave": 9, "erin": 8, "frank": 7}, "txn with slow minorities")
    print("\ncommit latency is unchanged: every shard's prepare/commit records")
    print("ride that shard's majority quorum, never the slow follower.")


if __name__ == "__main__":
    main()
