"""Fail-slow leader detection and re-election (§5 future work, implemented).

A fail-slow *leader* is the case quorum waits cannot hide. This demo
injects CPU slowness into the DepFastRaft leader mid-run; the trace-point
detector on each follower notices a backed-up, non-committing leader,
suspects it, and a normal election demotes it to a (well-tolerated)
fail-slow follower. Throughput collapses, then recovers.

Run:  python examples/leader_mitigation.py   (~1 minute)
"""

from repro import Cluster, FaultInjector, RaftConfig
from repro.detector.leader_detector import attach_detectors
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def main() -> None:
    cluster = Cluster(seed=19)
    raft = deploy_depfast_raft(cluster, GROUP, config=RaftConfig(preferred_leader="s1"))
    detectors = attach_detectors(raft)
    wait_for_leader(cluster, raft)

    workload = YcsbWorkload(cluster.rng.stream("ycsb"), record_count=100_000, value_size=1000)
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=32)
    driver.start()

    def window(start, end, label):
        report = driver.report(start, end)
        leader = find_leader(raft)
        print(
            f"  t=[{start/1000:4.1f}s,{end/1000:4.1f}s] {label:<28} "
            f"tput={report.throughput_ops_s:7.0f} ops/s  leader={leader.id if leader else '?'}"
        )

    cluster.run(until_ms=3000.0)
    window(1000.0, 3000.0, "healthy")

    print("\ninjecting cpu_slow into the LEADER (s1) ...")
    FaultInjector(cluster).inject("s1", "cpu_slow")
    cluster.run(until_ms=8000.0)
    window(3000.0, 8000.0, "fail-slow leader")

    cluster.run(until_ms=16_000.0)
    window(10_000.0, 16_000.0, "after detection + re-election")

    for detector in detectors:
        if detector.suspected:
            print(
                f"\ndetector on {detector.raft.id} suspected {detector.suspected} "
                f"at t={detector.suspected_at/1000:.1f}s"
            )
    new_leader = find_leader(raft)
    print(f"final leader: {new_leader.id}; s1 is now a fail-slow follower — tolerated.")


if __name__ == "__main__":
    main()
