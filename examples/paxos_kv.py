"""Multi-Paxos on DepFast — §2.3's spaghetti example, written straight.

The paper counts 15 callback executions for one request through 3-phase
Paxos on 5 replicas. Here the same protocol is three readable waits:
a Prepare QuorumCall, an Accept QuorumEvent per batch, and a commit
notification. This example elects a proposer, commits operations, crashes
the proposer, and shows the new one recovering accepted values through
its Prepare round.

Run:  python examples/paxos_kv.py
"""

from repro import Cluster, KvServiceClient
from repro.paxos import PaxosConfig, deploy_paxos
from repro.paxos.service import find_paxos_leader, wait_for_paxos_leader

GROUP = ["s1", "s2", "s3", "s4", "s5"]


def run_ops(cluster, client, ops):
    results = []

    def script():
        for op in ops:
            ok, value = yield from client.execute(op, size_bytes=64)
            results.append((op, ok, value))

    client.node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 20_000.0)
    return results


def main() -> None:
    cluster = Cluster(seed=61)
    nodes = deploy_paxos(cluster, GROUP, config=PaxosConfig(preferred_leader="s1"))
    leader = wait_for_paxos_leader(cluster, nodes)
    print(f"proposer: {leader.id} (ballot {leader.ballot}, 5 replicas)")

    client_node = cluster.add_client("c1")
    client_node.start()
    client = KvServiceClient(client_node, GROUP)

    print("\ncommitting through Prepare/Accept/Commit ...")
    for op, ok, value in run_ops(
        cluster, client, [("put", "proto", "paxos"), ("put", "style", "coroutines"), ("get", "proto")]
    ):
        print(f"  {op!r:38} -> ok={ok} result={value!r}")

    print(f"\ncrashing the proposer ({leader.id}) ...")
    leader.node.crash()
    cluster.run(until_ms=cluster.kernel.now + 8000.0)
    new_leader = find_paxos_leader(nodes)
    print(
        f"new proposer: {new_leader.id} (ballot {new_leader.ballot}) — "
        f"its Prepare round adopted every accepted value"
    )

    print("\nreading back after failover ...")
    for op, ok, value in run_ops(cluster, client, [("get", "proto"), ("get", "style")]):
        print(f"  {op!r:38} -> ok={ok} result={value!r}")

    print("\nreplica state:")
    for node_id, paxos_node in sorted(nodes.items()):
        status = "CRASHED" if paxos_node.node.crashed else (
            "proposer" if paxos_node.is_leader else "acceptor"
        )
        print(
            f"  {node_id}: {status:<9} commit={paxos_node.commit_index:3d} "
            f"applied={paxos_node.last_applied:3d}"
        )


if __name__ == "__main__":
    main()
