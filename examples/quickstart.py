"""Quickstart: coroutines, events, and why QuorumEvent matters.

Builds the paper's §3.1 example in miniature: a coordinator broadcasts an
RPC to three servers, one of which is fail-slow. Waiting on each RPC in
turn propagates the slowness; waiting on a QuorumEvent does not.

Run:  python examples/quickstart.py
"""

from repro import Cluster, QuorumEvent


def main() -> None:
    cluster = Cluster(seed=1)
    coordinator = cluster.add_node("coord")
    servers = [cluster.add_node(f"s{i+1}") for i in range(3)]

    # Register a trivial request handler on each server. Handlers are
    # generators: they can wait on events (here: simulated CPU work).
    for server in servers:
        def handler(payload, src, _rt=server.runtime):
            yield _rt.compute(0.5)  # 0.5 CPU-ms of processing
            return {"ok": True, "from": _rt.node}

        server.endpoint.register("work", handler)
        server.start()
    coordinator.start()

    # Make s3 fail-slow: 5% CPU, the paper's Table 1 "CPU slow" fault.
    servers[2].cpu.set_quota(0.05)

    results = {}

    def sequential_waits():
        """The anti-pattern: wait on every RPC individually (§3.1)."""
        start = coordinator.runtime.now
        for target in ("s1", "s2", "s3"):
            rpc = coordinator.endpoint.call(target, "work", {}, size_bytes=64)
            yield rpc.wait()  # <- possible slowness on every iteration
        results["sequential_ms"] = coordinator.runtime.now - start

    def quorum_wait():
        """The DepFast pattern: broadcast, wait for a majority (2 of 3)."""
        start = coordinator.runtime.now
        quorum = QuorumEvent(quorum=2, n_total=3)
        for target in ("s1", "s2", "s3"):
            quorum.add(coordinator.endpoint.call(target, "work", {}, size_bytes=64))
        yield quorum.wait()
        results["quorum_ms"] = coordinator.runtime.now - start

    coordinator.runtime.spawn(sequential_waits())
    cluster.run(until_ms=1000.0)
    coordinator.runtime.spawn(quorum_wait())
    cluster.run(until_ms=2000.0)

    print("One of three servers is fail-slow (5% CPU quota).")
    print(f"  waiting on each RPC in turn : {results['sequential_ms']:8.2f} ms")
    print(f"  waiting on QuorumEvent (2/3): {results['quorum_ms']:8.2f} ms")
    print()
    speedup = results["sequential_ms"] / results["quorum_ms"]
    print(f"The quorum wait is {speedup:.0f}x faster: the slow server is "
          "simply not on the critical path.")


if __name__ == "__main__":
    main()
