"""A replicated key-value store on DepFastRaft (§3.4).

Deploys a 3-node DepFastRaft group, runs client operations through the
leader, demonstrates redirect handling, then crashes the leader and shows
the group electing a replacement and preserving committed data.

Run:  python examples/replicated_kv.py
"""

from repro import Cluster, KvServiceClient, RaftConfig, deploy_depfast_raft, find_leader
from repro.raft.service import wait_for_leader

GROUP = ["s1", "s2", "s3"]


def run_ops(cluster, client, ops):
    results = []

    def script():
        for op in ops:
            ok, value = yield from client.execute(op, size_bytes=64)
            results.append((op, ok, value))

    client.node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 20_000.0)
    return results


def main() -> None:
    cluster = Cluster(seed=7)
    raft = deploy_depfast_raft(
        cluster, GROUP, config=RaftConfig(preferred_leader="s1")
    )
    leader = wait_for_leader(cluster, raft)
    print(f"elected leader: {leader.id} (term {leader.term})")

    client_node = cluster.add_client("c1")
    client_node.start()
    client = KvServiceClient(client_node, GROUP)

    print("\nwriting three keys ...")
    for op, ok, value in run_ops(
        cluster,
        client,
        [("put", "lang", "python"), ("put", "paper", "depfast"), ("get", "lang")],
    ):
        print(f"  {op!r:40} -> ok={ok} result={value!r}")

    print(f"\ncrashing the leader ({leader.id}) ...")
    leader.node.crash()
    cluster.run(until_ms=cluster.kernel.now + 8000.0)
    new_leader = find_leader(raft)
    print(f"new leader: {new_leader.id} (term {new_leader.term})")

    print("\nreading back after failover ...")
    for op, ok, value in run_ops(cluster, client, [("get", "paper"), ("get", "lang")]):
        print(f"  {op!r:40} -> ok={ok} result={value!r}")

    print("\nreplica state:")
    for node_id, raft_node in sorted(raft.items()):
        status = "CRASHED" if raft_node.node.crashed else raft_node.role.value
        print(
            f"  {node_id}: {status:<9} log={raft_node.log.last_index():4d} "
            f"applied={raft_node.last_applied:4d}"
        )


if __name__ == "__main__":
    main()
