"""Fail-slow fault tolerance: a baseline RSM vs DepFastRaft, side by side.

A miniature of the paper's Figure 1 vs Figure 3 comparison: the same
update-heavy workload against a MongoDB-like baseline and DepFastRaft,
healthy and with a CPU-slow follower. The baseline degrades; DepFastRaft
holds its numbers.

Run:  python examples/fault_tolerance_demo.py   (~1 minute)
"""

from repro import Cluster, FaultInjector, RaftConfig
from repro.baselines import MongoLikeRsm, deploy_baseline
from repro.raft.service import deploy_depfast_raft
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]
WARMUP_MS, END_MS = 2000.0, 8000.0


def run(system: str, fault: str):
    cluster = Cluster(seed=42)
    if system == "depfast":
        deploy_depfast_raft(cluster, GROUP, config=RaftConfig(preferred_leader="s1"))
    else:
        deploy_baseline(cluster, MongoLikeRsm, GROUP)
    if fault != "none":
        FaultInjector(cluster).inject("s3", fault)
    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"), record_count=100_000, value_size=1000
    )
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=32)
    driver.start()
    cluster.run(until_ms=END_MS)
    return driver.report(WARMUP_MS, END_MS)


def main() -> None:
    print(f"{'system':<12}{'condition':<12}{'tput (ops/s)':>14}{'avg (ms)':>10}{'p99 (ms)':>10}")
    for system in ("mongo-like", "depfast"):
        baseline = None
        for fault in ("none", "cpu_slow"):
            report = run(system, fault)
            if fault == "none":
                baseline = report
            print(
                f"{system:<12}{fault:<12}{report.throughput_ops_s:>14.0f}"
                f"{report.avg_latency_ms:>10.2f}{report.p99_latency_ms:>10.2f}"
            )
        drop = 1 - report.throughput_ops_s / baseline.throughput_ops_s
        print(f"{'':<12}-> throughput drop with a fail-slow follower: {drop*100:.1f}%\n")


if __name__ == "__main__":
    main()
