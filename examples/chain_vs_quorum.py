"""Design-tradeoff analysis: chain replication vs quorum replication (§3.3).

The same workload and the same fail-slow fault (CPU slow on the middle
node) against a 3-node chain and a 3-node DepFastRaft group. The chain's
wait structure (red 1/1 head→tail edge) predicts the collapse; the quorum's
(green 2/3 edges) predicts the tolerance — and the measurements agree.

Run:  python examples/chain_vs_quorum.py   (~1 minute)
"""

from repro import Cluster, FaultInjector, RaftConfig, build_spg, check_fail_slow_tolerance, render_spg
from repro.chain import deploy_chain
from repro.raft.service import deploy_depfast_raft
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def run(system: str, fault: str):
    cluster = Cluster(seed=42)
    if system == "chain":
        deploy_chain(cluster, GROUP)
    else:
        deploy_depfast_raft(cluster, GROUP, config=RaftConfig(preferred_leader="s1"))
    if fault != "none":
        FaultInjector(cluster).inject("s2", fault)
    workload = YcsbWorkload(cluster.rng.stream("y"), record_count=10_000, value_size=1000)
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=16)
    driver.start()
    cluster.run(until_ms=6000.0)
    return driver.report(2000.0, 6000.0), cluster.tracer.records


def main() -> None:
    print(f"{'system':<10}{'condition':<12}{'tput (ops/s)':>14}{'p99 (ms)':>10}")
    spgs = {}
    for system in ("chain", "depfast"):
        for fault in ("none", "cpu_slow"):
            report, records = run(system, fault)
            if fault == "none":
                spgs[system] = records
            print(f"{system:<10}{fault:<12}{report.throughput_ops_s:>14.0f}{report.p99_latency_ms:>10.2f}")
    print()
    for system, records in spgs.items():
        print(f"--- {system}: wait structure ---")
        print(render_spg(build_spg(records)))
        print(check_fail_slow_tolerance(records, [GROUP]).summary())
        print()


if __name__ == "__main__":
    main()
