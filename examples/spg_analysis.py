"""Runtime verification: slowness propagation graphs and the checker (§3.3).

Deploys one DepFastRaft shard and one MongoDB-like baseline group, runs
the same workload on both, and compares what the tracer sees:

* DepFastRaft's SPG has only green (quorum) intra-group edges and passes
  the fail-slow tolerance check;
* the baseline's SPG contains red all-follower waits, which the checker
  flags with the offending event names.

Run:  python examples/spg_analysis.py
"""

from repro import Cluster, RaftConfig, build_spg, check_fail_slow_tolerance, render_spg
from repro.baselines import MongoLikeRsm, deploy_baseline
from repro.raft.service import deploy_depfast_raft
from repro.trace.analysis import slowness_attribution
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def traced_run(system: str):
    cluster = Cluster(seed=11)
    if system == "depfast":
        deploy_depfast_raft(cluster, GROUP, config=RaftConfig(preferred_leader="s1"))
    else:
        deploy_baseline(cluster, MongoLikeRsm, GROUP)
    workload = YcsbWorkload(cluster.rng.stream("ycsb"), record_count=10_000, value_size=1000)
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=16)
    driver.start()
    cluster.run(until_ms=3000.0)
    return cluster.tracer.records


def main() -> None:
    for system in ("depfast", "mongo-like"):
        records = traced_run(system)
        graph = build_spg(records)
        report = check_fail_slow_tolerance(records, [GROUP])
        print(f"===== {system} =====")
        print(render_spg(graph))
        print(report.summary())
        charges = slowness_attribution(records, node="s1")
        total = sum(charges.values()) or 1.0
        print("leader wait-time attribution:", {
            peer: f"{ms/total*100:.0f}%" for peer, ms in sorted(charges.items())
        })
        print()


if __name__ == "__main__":
    main()
